//! `ServeClient`: the client half of the wire protocol, used by the
//! `dominoc` subcommands, the `dominogw` gateway, the integration tests
//! and the load harness.
//!
//! By default the client keeps one connection alive and reuses it across
//! requests (`Connection: keep-alive`), falling back transparently to a
//! fresh connection when the pooled one has gone stale — a server may
//! close an idle connection at any time, and the retry makes that
//! invisible to callers. The retry fires only when the request provably
//! never reached the server (the write failed, or the server closed
//! before sending any response byte); a failure after that — a read
//! timeout, a reset mid-response — is surfaced as an error, because the
//! server may already be processing the request and a blind resend could
//! double-submit a job. Blocking requests (`?wait=1`/`?wait=true`
//! anywhere in the query string, event streams) always use a dedicated
//! single-request connection so an arbitrarily-long job cannot pin the
//! pooled one. Connection failures are distinguished from job failures
//! so the CLI can exit with distinct codes: a refused/unreachable server
//! is [`ClientError::Unreachable`], a job that ran and failed is
//! [`ClientError::Api`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use domino_engine::json::{parse, Json};
use domino_engine::JobSpec;

use crate::http::{HttpConnection, Response};
use crate::protocol::{ErrorReply, EventRecord, MetricsReply, StatusReply, SubmitReply};

/// Client-side failures, split by who is at fault.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the server at all (refused, no route, DNS).
    /// `dominoc` maps this to its distinct "server unreachable" exit code.
    Unreachable(String),
    /// The connection worked but I/O failed mid-request.
    Io(String),
    /// The server answered with something the protocol cannot parse.
    Protocol(String),
    /// The server answered with a non-success status and an error body.
    Api {
        /// HTTP status code.
        status: u16,
        /// The server's rendered reason.
        error: String,
        /// `Retry-After` seconds, when the server sent one (backpressure).
        retry_after: Option<u64>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unreachable(e) => write!(f, "server unreachable: {e}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Api { status, error, .. } => {
                write!(f, "server returned {status}: {error}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A per-request retry budget with exponential backoff and
/// *deterministic* jitter: the delay before retry `n` is a pure function
/// of `(seed, n)`, so a chaos run that retried its way to recovery
/// replays the exact same schedule under the same seed. A server-sent
/// `Retry-After` overrides the computed backoff — explicit backpressure
/// knows better than a guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub budget: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling for the computed (jittered) backoff. `Retry-After` is
    /// honored even beyond it.
    pub max_delay: Duration,
    /// Jitter seed; same seed ⇒ same delays.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `budget` retries and the default 50 ms → 2 s
    /// exponential window, seed 0.
    pub fn new(budget: u32) -> Self {
        RetryPolicy {
            budget,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0,
        }
    }

    /// The same policy under a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay before retry `attempt` (0-based): "equal jitter" over an
    /// exponential window — half the window guaranteed, half jittered by
    /// a splitmix64 of `(seed, attempt)`. When the failed attempt carried
    /// a `Retry-After`, that wins verbatim.
    pub fn delay(&self, attempt: u32, retry_after: Option<u64>) -> Duration {
        if let Some(secs) = retry_after {
            return Duration::from_secs(secs);
        }
        let window = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let half = window / 2;
        let jitter_ns = match half.as_nanos() as u64 {
            0 => 0,
            span => splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37)) % (span + 1),
        };
        half + Duration::from_nanos(jitter_ns)
    }

    /// Whether `error` is safe to retry under this policy: the connection
    /// was never established ([`ClientError::Unreachable`] — the request
    /// provably never reached a handler) or the server explicitly asked
    /// for a retry (429 backpressure). Mid-exchange I/O failures are
    /// *not* retried here — the request may already be processing, and a
    /// blind resend could double-submit.
    pub fn retryable(error: &ClientError) -> bool {
        matches!(
            error,
            ClientError::Unreachable(_) | ClientError::Api { status: 429, .. }
        )
    }
}

/// splitmix64 finalizer — the workspace's stock deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `dominod` client bound to one server address.
///
/// Cloning shares the connection pool: clones of one client reuse the
/// same kept-alive connection (one at a time; concurrent requests that
/// find the pool busy open their own connection and the winner repools).
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    reuse: bool,
    /// When set, bounds connect, reads and writes — control-plane
    /// clients (probes, cache peering) use this so a half-up peer
    /// cannot stall them for the default 30 s read timeout.
    io_timeout: Option<Duration>,
    /// When set, the typed request methods retry under this budget;
    /// `None` (the default) keeps the pre-budget single-attempt
    /// behaviour. [`ServeClient::forward`] never retries regardless — a
    /// relay caller owns its own failover policy.
    retry: Option<RetryPolicy>,
    pool: Arc<Mutex<Option<HttpConnection>>>,
    reuses: Arc<AtomicU64>,
}

/// Read timeout for immediate (non-blocking) requests on a default
/// client; blocking requests (`?wait=1`, event streams) are untimed.
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Builds a [`ServeClient`] from chainable options — the one place every
/// client knob lives. The old one-constructor-per-knob surface
/// (`ServeClient::new` / `without_keep_alive` / `with_io_timeout` /
/// `with_retry`) still works as thin shims over this builder, but new
/// code (and any caller combining two knobs) should come through here:
///
/// ```
/// use domino_serve::{RetryPolicy, ServeClient};
/// use std::time::Duration;
///
/// let probe = ServeClient::builder("127.0.0.1:7171")
///     .io_timeout(Duration::from_secs(2))
///     .retry(RetryPolicy::new(3))
///     .build();
/// assert_eq!(probe.addr(), "127.0.0.1:7171");
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    keep_alive: bool,
    io_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
}

impl ClientBuilder {
    /// Starts a builder for the server at `addr` with the defaults of
    /// [`ServeClient::new`]: keep-alive on, no I/O timeout, no retries.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientBuilder {
            addr: addr.into(),
            keep_alive: true,
            io_timeout: None,
            retry: None,
        }
    }

    /// Opens a fresh connection for every request instead of pooling a
    /// kept-alive one — the pre-keep-alive wire behaviour, kept for
    /// benchmarking the difference and for strict request isolation.
    #[must_use]
    pub fn fresh_connections(mut self) -> Self {
        self.keep_alive = false;
        self
    }

    /// Bounds connect, reads and writes by `timeout` — for control-plane
    /// traffic (health probes, cache peek/fill peering) that must stay
    /// fast even against a half-up peer that accepts TCP but never
    /// answers. Blocking requests (`?wait=1`, event streams) are still
    /// untimed on reads.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Adds a retry budget to the typed request methods (`submit`,
    /// `run_sync`, `status`, ...): an unreachable server or an explicit
    /// 429 is retried up to `policy.budget` times, sleeping
    /// `policy.delay(..)` (which honors `Retry-After`) between attempts.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The configured client.
    pub fn build(self) -> ServeClient {
        ServeClient {
            addr: self.addr,
            reuse: self.keep_alive,
            io_timeout: self.io_timeout,
            retry: self.retry,
            pool: Arc::new(Mutex::new(None)),
            reuses: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl ServeClient {
    /// Starts a [`ClientBuilder`] for the server at `addr` (e.g.
    /// `127.0.0.1:7171`) — the front door for configured clients.
    pub fn builder(addr: impl Into<String>) -> ClientBuilder {
        ClientBuilder::new(addr)
    }

    /// A keep-alive client for the server at `addr` with default options
    /// — shorthand for `ServeClient::builder(addr).build()`.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientBuilder::new(addr).build()
    }

    /// The same client with a retry budget — shim over
    /// [`ClientBuilder::retry`]; prefer the builder in new code.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// A client that opens a fresh connection for every request — shim
    /// over [`ClientBuilder::fresh_connections`]; prefer the builder in
    /// new code.
    pub fn without_keep_alive(addr: impl Into<String>) -> Self {
        ClientBuilder::new(addr).fresh_connections().build()
    }

    /// A keep-alive client with bounded connect/read/write — shim over
    /// [`ClientBuilder::io_timeout`]; prefer the builder in new code.
    pub fn with_io_timeout(addr: impl Into<String>, timeout: Duration) -> Self {
        ClientBuilder::new(addr).io_timeout(timeout).build()
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many requests were answered over a reused (kept-alive)
    /// connection rather than a fresh one. Shared across clones.
    pub fn connection_reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// `blocking`: whether this request may legitimately wait on job
    /// progress (long-polls, event streams, sync submits). Those get no
    /// read timeout — the server sends nothing until the job is terminal,
    /// and a job may queue and run for arbitrarily long — while immediate
    /// requests keep a timeout so a wedged server cannot hang the CLI.
    fn connect(&self, blocking: bool) -> Result<HttpConnection, ClientError> {
        let unreach =
            |e: &dyn fmt::Display| ClientError::Unreachable(format!("{}: {e}", self.addr));
        if domino_failpoint::should_fire("serve.client.connect") {
            return Err(unreach(&"failpoint fired: serve.client.connect"));
        }
        let stream = match self.io_timeout {
            None => std::net::TcpStream::connect(&self.addr).map_err(|e| unreach(&e))?,
            // Bounded connect: try each resolved address under the
            // budget, so a peer whose SYN queue accepts but never
            // completes the handshake cannot stall the caller.
            Some(limit) => {
                use std::net::ToSocketAddrs;
                let addrs = self.addr.to_socket_addrs().map_err(|e| unreach(&e))?;
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for addr in addrs {
                    match std::net::TcpStream::connect_timeout(&addr, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| match &last {
                    Some(e) => unreach(e),
                    None => unreach(&"address resolved to nothing"),
                })?
            }
        };
        let timeout = if blocking {
            None
        } else {
            Some(self.io_timeout.unwrap_or(DEFAULT_READ_TIMEOUT))
        };
        stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        if let Some(limit) = self.io_timeout {
            stream
                .set_write_timeout(Some(limit))
                .map_err(|e| ClientError::Io(e.to_string()))?;
        }
        Ok(HttpConnection::new(stream))
    }

    /// One request/response exchange on `conn`.
    fn exchange(
        &self,
        conn: &mut HttpConnection,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        keep_alive: bool,
    ) -> std::io::Result<Response> {
        conn.write_request(&self.addr, method, path, body, keep_alive)?;
        conn.read_response()
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, ClientError> {
        let attempt_once = || -> Result<Response, ClientError> {
            let response = self.request_any(method, path, body)?;
            check_status(&response)?;
            Ok(response)
        };
        let Some(policy) = self.retry else {
            return attempt_once();
        };
        let mut attempt = 0;
        loop {
            match attempt_once() {
                Err(e) if attempt < policy.budget && RetryPolicy::retryable(&e) => {
                    let retry_after = match &e {
                        ClientError::Api { retry_after, .. } => *retry_after,
                        _ => None,
                    };
                    std::thread::sleep(policy.delay(attempt, retry_after));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// The transport half of [`ServeClient::request`]: one exchange,
    /// whatever the status — interpreting non-2xx is the caller's job.
    fn request_any(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, ClientError> {
        // A `?wait=1` / `?wait=true` request blocks until the job is
        // terminal; it gets a dedicated connection so it cannot pin the
        // pooled one. Decided by the same query parsing as the server's
        // `Request::wants_wait` — proxied targets (the gateway forwards
        // its caller's target verbatim) may carry `wait` in any position
        // and either spelling.
        let blocking = crate::http::target_wants_wait(path);
        if blocking || !self.reuse {
            let mut conn = self.connect(blocking)?;
            let response = self
                .exchange(&mut conn, method, path, body, false)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            return Ok(response);
        }
        // Keep-alive path: try the pooled connection first, retrying
        // exactly once on a fresh connection when the pooled one has gone
        // stale. For idempotent methods (GET/DELETE) any pooled failure
        // is retried — re-asking is harmless. A non-idempotent request
        // (`POST /jobs` admits a job) is retried only when it provably
        // never reached the server's handler:
        //
        // * the write itself failed (the request never fully left), or
        // * the server closed cleanly before sending any response byte —
        //   it idle-closed the pooled connection without reading the
        //   request (this protocol's servers always answer a request they
        //   processed).
        //
        // Any later failure (read timeout, reset mid-response) may mean
        // the server is processing, or already processed, the request;
        // resending could then double-submit, so those surface as errors
        // instead. A fresh connection's failure is never retried — that
        // is a real error.
        let idempotent = matches!(method, "GET" | "DELETE");
        let mut pooled = self.pool.lock().expect("client pool").take();
        if pooled.is_some() && domino_failpoint::should_fire("serve.client.reuse") {
            // Injected stale pool: the kept-alive connection is dropped as
            // if the server had idle-closed it, forcing the fresh-connect
            // fallback below.
            pooled = None;
        }
        if let Some(mut conn) = pooled {
            match conn.write_request(&self.addr, method, path, body, true) {
                // Stale pool: fall through to a fresh connection.
                Err(_never_sent) => {}
                Ok(()) => match conn.read_response() {
                    Ok(response) => {
                        self.reuses.fetch_add(1, Ordering::Relaxed);
                        self.repool(conn, &response);
                        return Ok(response);
                    }
                    // Stale pool: fall through to a fresh connection.
                    Err(e) if idempotent || crate::http::closed_before_response(&e) => {}
                    Err(e) => return Err(ClientError::Io(format!("pooled connection: {e}"))),
                },
            }
        }
        let mut conn = self.connect(false)?;
        let response = self
            .exchange(&mut conn, method, path, body, true)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        self.repool(conn, &response);
        Ok(response)
    }

    /// Proxy passthrough: one exchange returning the raw [`Response`]
    /// whatever its status — what `dominogw` uses to relay a backend's
    /// answer (success or error body) verbatim to its own caller. Rides
    /// the same kept-alive pool as the typed methods.
    ///
    /// # Errors
    ///
    /// Transport failures only ([`ClientError::Unreachable`] /
    /// [`ClientError::Io`]); an HTTP error status is a successful forward.
    pub fn forward(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, ClientError> {
        self.request_any(method, path, body)
    }

    /// Returns a connection to the pool iff the server agreed to keep it
    /// alive. Error responses (4xx/5xx) still ride keep-alive: the
    /// connection state is clean after any complete exchange.
    fn repool(&self, conn: HttpConnection, response: &Response) {
        if response.keeps_alive() {
            *self.pool.lock().expect("client pool") = Some(conn);
        }
    }

    fn request_json(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Json, ClientError> {
        let response = self.request(method, path, body)?;
        parse_body(&response)
    }

    /// `POST /jobs`: submits a spec, returning the admission reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 429 (and `retry_after`) when the
    /// queue is full, 400 for invalid specs, 503 while draining.
    pub fn submit(&self, spec: &JobSpec) -> Result<SubmitReply, ClientError> {
        let body = spec.to_json().serialize();
        let v = self.request_json("POST", "/jobs", Some(body.as_bytes()))?;
        SubmitReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `POST /jobs?wait=1`: submit and wait in one round trip, returning
    /// the completed outcome as the engine's exact serialized JSON text —
    /// the cheapest warm-cache path (one round trip per job).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`] for admission, plus
    /// [`ClientError::Api`] with 502/409 if the job failed or was
    /// cancelled.
    pub fn run_sync(&self, spec: &JobSpec) -> Result<String, ClientError> {
        let body = spec.to_json().serialize();
        let response = self.request("POST", "/jobs?wait=1", Some(body.as_bytes()))?;
        response
            .text()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /jobs/:id`: the job's status document. With `wait`, blocks
    /// until the job is terminal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with 404 for unknown jobs.
    pub fn status(&self, id: u64, wait: bool) -> Result<StatusReply, ClientError> {
        let path = format!("/jobs/{id}{}", if wait { "?wait=1" } else { "" });
        let v = self.request_json("GET", &path, None)?;
        StatusReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /jobs/:id/result`: the completed outcome as the engine's exact
    /// serialized JSON text. With `wait`, blocks until terminal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 502 if the job failed, 409 if it
    /// was cancelled or is not finished.
    pub fn result(&self, id: u64, wait: bool) -> Result<String, ClientError> {
        let path = format!("/jobs/{id}/result{}", if wait { "?wait=1" } else { "" });
        let response = self.request("GET", &path, None)?;
        response
            .text()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /cache/peek/:key`: this node's cached outcome bytes for
    /// `key`, or `None` when it holds no entry (a 404 is the expected
    /// miss answer, not an error).
    ///
    /// # Errors
    ///
    /// Transport failures and non-404 API errors.
    pub fn cache_peek(&self, key: &str) -> Result<Option<String>, ClientError> {
        match self.request("GET", &format!("/cache/peek/{key}"), None) {
            Ok(response) => response
                .text()
                .map(Some)
                .map_err(|e| ClientError::Protocol(e.to_string())),
            Err(ClientError::Api { status: 404, .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// `POST /cache/fill/:key`: hands this node an outcome computed
    /// elsewhere, warming its cache for `key`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with 400 when the outcome does not match the
    /// key, 404 when the node runs without a cache.
    pub fn cache_fill(&self, key: &str, outcome_text: &str) -> Result<(), ClientError> {
        self.request(
            "POST",
            &format!("/cache/fill/{key}"),
            Some(outcome_text.as_bytes()),
        )
        .map(|_| ())
    }

    /// `GET /jobs/:id/events`: streams the job's lifecycle events,
    /// invoking `on_event` for each as it arrives, until the stream ends
    /// (terminal event or server drain).
    ///
    /// # Errors
    ///
    /// Transport, protocol (an undecodable event line), and API errors.
    pub fn events(
        &self,
        id: u64,
        mut on_event: impl FnMut(&EventRecord),
    ) -> Result<Vec<EventRecord>, ClientError> {
        // The event stream blocks between chunks for as long as the job
        // runs; no read timeout, and a dedicated connection — the server
        // closes it when the stream ends.
        let mut conn = self.connect(true)?;
        conn.write_request(
            &self.addr,
            "GET",
            &format!("/jobs/{id}/events"),
            None,
            false,
        )
        .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut events = Vec::new();
        let mut pending = String::new();
        let mut parse_failure: Option<String> = None;
        let response = conn
            .read_response_streaming(|chunk| {
                pending.push_str(&String::from_utf8_lossy(chunk));
                while let Some(newline) = pending.find('\n') {
                    let line: String = pending.drain(..=newline).collect();
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    match parse(line)
                        .map_err(|e| e.to_string())
                        .and_then(|v| EventRecord::from_json(&v).map_err(|e| e.to_string()))
                    {
                        Ok(event) => {
                            on_event(&event);
                            events.push(event);
                        }
                        // A line we cannot decode must not vanish silently —
                        // dropping (say) the terminal event would make the
                        // caller misread a finished job as unfinished.
                        Err(e) if parse_failure.is_none() => {
                            parse_failure = Some(format!("undecodable event '{line}': {e}"));
                        }
                        Err(_) => {}
                    }
                }
            })
            .map_err(|e| ClientError::Io(e.to_string()))?;
        check_status(&response)?;
        if let Some(failure) = parse_failure {
            return Err(ClientError::Protocol(failure));
        }
        Ok(events)
    }

    /// `DELETE /jobs/:id`: requests cancellation; returns the resulting
    /// status (queued jobs cancel immediately, running jobs stop at the
    /// flow's next stage boundary).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with 404 for unknown jobs.
    pub fn cancel(&self, id: u64) -> Result<StatusReply, ClientError> {
        let v = self.request_json("DELETE", &format!("/jobs/{id}"), None)?;
        StatusReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors.
    pub fn metrics(&self) -> Result<MetricsReply, ClientError> {
        let v = self.request_json("GET", "/metrics", None)?;
        MetricsReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /healthz`. Returns the raw health document.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.request_json("GET", "/healthz", None)
    }

    /// `POST /shutdown`: asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport and API errors.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request("POST", "/shutdown", None).map(|_| ())
    }
}

fn parse_body(response: &Response) -> Result<Json, ClientError> {
    let text = response
        .text()
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
    parse(&text).map_err(|e| ClientError::Protocol(e.to_string()))
}

fn check_status(response: &Response) -> Result<(), ClientError> {
    if (200..300).contains(&response.status) {
        return Ok(());
    }
    let error = parse_body(response)
        .ok()
        .and_then(|v| ErrorReply::from_json(&v).ok())
        .map(|e| e.error)
        .unwrap_or_else(|| format!("(no error body, {} bytes)", response.body.len()));
    Err(ClientError::Api {
        status: response.status,
        error,
        retry_after: response.header("retry-after").and_then(|v| v.parse().ok()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::NextRequest;
    use std::io::Write;
    use std::net::{Shutdown, TcpListener};

    fn read_request(conn: &mut HttpConnection) -> crate::http::Request {
        match conn.next_request().expect("request") {
            NextRequest::Request(request) => request,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    /// A stale pooled connection whose close the client observes as a
    /// clean EOF before any response byte is retried transparently, even
    /// for a non-idempotent POST — the server provably never read the
    /// request.
    #[test]
    fn pooled_post_is_retried_after_clean_eof_before_any_response_byte() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = ServeClient::new(addr);
        let server = std::thread::spawn(move || {
            // Exchange 1 primes the pool.
            let (stream, _) = listener.accept().unwrap();
            let mut conn = HttpConnection::new(stream);
            read_request(&mut conn);
            conn.write_response(200, &[], b"{}", true).unwrap();
            // Idle-close the pooled connection: FIN without a response.
            // Only the write side, so the client's unread second request
            // drains instead of triggering a reset.
            conn.stream().shutdown(Shutdown::Write).unwrap();
            // The retry arrives on a fresh connection.
            let (stream, _) = listener.accept().unwrap();
            let mut retry_conn = HttpConnection::new(stream);
            let request = read_request(&mut retry_conn);
            retry_conn
                .write_response(200, &[], b"{\"retried\":true}", true)
                .unwrap();
            request
        });
        assert_eq!(
            client.forward("POST", "/jobs", Some(b"{}")).unwrap().status,
            200
        );
        let response = client.forward("POST", "/jobs", Some(b"{}")).unwrap();
        assert_eq!(response.body, b"{\"retried\":true}");
        let request = server.join().unwrap();
        assert_eq!(request.method, "POST");
        // Both answers came over connections that saw no prior response.
        assert_eq!(client.connection_reuses(), 0);
    }

    /// A pooled POST whose response *started* and then died must surface
    /// the failure instead of retrying: the server may have admitted the
    /// job, and a resend could double-submit it.
    #[test]
    fn pooled_post_failure_after_response_started_is_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = ServeClient::new(addr);
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = HttpConnection::new(stream);
            read_request(&mut conn);
            conn.write_response(200, &[], b"{}", true).unwrap();
            // Second request: begin a response, then die mid-body.
            read_request(&mut conn);
            conn.stream_mut()
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap();
            conn.stream().shutdown(Shutdown::Write).unwrap();
            // No retry may arrive: the listener must stay silent.
            listener.set_nonblocking(true).unwrap();
            std::thread::sleep(Duration::from_millis(100));
            assert!(
                listener.accept().is_err(),
                "a mid-response failure must not be retried"
            );
        });
        assert_eq!(
            client.forward("POST", "/jobs", Some(b"{}")).unwrap().status,
            200
        );
        let err = client.forward("POST", "/jobs", Some(b"{}")).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        server.join().unwrap();
    }

    /// The backoff schedule is a pure function of (seed, attempt): same
    /// inputs, same delays — a chaos run's timing reproduces exactly.
    #[test]
    fn retry_policy_delays_are_deterministic_and_honor_retry_after() {
        let policy = RetryPolicy::new(3).with_seed(42);
        for attempt in 0..4 {
            assert_eq!(
                policy.delay(attempt, None),
                policy.delay(attempt, None),
                "replaying attempt {attempt} gives the same delay"
            );
        }
        // Equal jitter: each delay lands in the upper half of its
        // exponentially growing window.
        let first = policy.delay(0, None);
        assert!(first >= Duration::from_millis(25) && first <= Duration::from_millis(50));
        let third = policy.delay(2, None);
        assert!(third >= Duration::from_millis(100) && third <= Duration::from_millis(200));
        // The computed backoff never exceeds its ceiling, however deep
        // the attempt counter gets.
        assert!(policy.delay(30, None) <= policy.max_delay);
        // Explicit server backpressure wins verbatim over the schedule.
        assert_eq!(policy.delay(5, Some(7)), Duration::from_secs(7));
        // The seed actually feeds the jitter.
        assert_ne!(
            RetryPolicy::new(3).with_seed(1).delay(0, None),
            RetryPolicy::new(3).with_seed(2).delay(0, None),
        );
    }

    /// A `429 Retry-After` answer is consumed by the retry budget: the
    /// client waits as told and resubmits, so transient backpressure
    /// never surfaces to a caller with budget left.
    #[test]
    fn retry_budget_survives_429_backpressure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = ServeClient::new(addr).with_retry(RetryPolicy::new(2).with_seed(7));
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = HttpConnection::new(stream);
            read_request(&mut conn);
            // Full queue: 429 with explicit zero backpressure, keep-alive
            // so the retry rides the pooled connection.
            conn.write_response(
                429,
                &[("retry-after", "0")],
                b"{\"error\":\"queue full\"}",
                true,
            )
            .unwrap();
            let request = read_request(&mut conn);
            let reply =
                b"{\"id\":1,\"name\":\"frg1\",\"key\":\"k\",\"status\":\"queued\",\"queue_depth\":0}";
            conn.write_response(202, &[], reply, true).unwrap();
            request
        });
        let spec = domino_engine::JobSpec::suite("frg1");
        let admitted = client.submit(&spec).expect("retried past the 429");
        assert_eq!(admitted.id, 1);
        let request = server.join().unwrap();
        assert_eq!(request.method, "POST", "the resubmission is a real POST");
        assert_eq!(client.connection_reuses(), 1, "retry reused the pool");
    }

    /// Idempotent requests retry on ANY pooled failure — including the
    /// abrupt-close flavours (reset races) a clean idle close can
    /// degrade into.
    #[test]
    fn pooled_get_is_retried_after_abrupt_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = ServeClient::new(addr);
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = HttpConnection::new(stream);
            read_request(&mut conn);
            conn.write_response(200, &[], b"{}", true).unwrap();
            // Full close: depending on timing the client sees EOF or a
            // reset; a GET must survive either.
            drop(conn);
            let (stream, _) = listener.accept().unwrap();
            let mut retry_conn = HttpConnection::new(stream);
            read_request(&mut retry_conn);
            retry_conn
                .write_response(200, &[], b"{\"ok\":true}", true)
                .unwrap();
        });
        assert_eq!(client.forward("GET", "/metrics", None).unwrap().status, 200);
        let response = client.forward("GET", "/metrics", None).unwrap();
        assert_eq!(response.body, b"{\"ok\":true}");
        server.join().unwrap();
    }
}
