//! `ServeClient`: the client half of the wire protocol, used by the
//! `dominoc` subcommands, the integration tests and the load harness.
//!
//! One request per connection (mirroring the server's `Connection: close`
//! model). Connection failures are distinguished from job failures so the
//! CLI can exit with distinct codes: a refused/unreachable server is
//! [`ClientError::Unreachable`], a job that ran and failed is
//! [`ClientError::Api`].

use std::fmt;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use domino_engine::json::{parse, Json};
use domino_engine::JobSpec;

use crate::http::{read_response, read_response_streaming, Response};
use crate::protocol::{ErrorReply, EventRecord, MetricsReply, StatusReply, SubmitReply};

/// Client-side failures, split by who is at fault.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the server at all (refused, no route, DNS).
    /// `dominoc` maps this to its distinct "server unreachable" exit code.
    Unreachable(String),
    /// The connection worked but I/O failed mid-request.
    Io(String),
    /// The server answered with something the protocol cannot parse.
    Protocol(String),
    /// The server answered with a non-success status and an error body.
    Api {
        /// HTTP status code.
        status: u16,
        /// The server's rendered reason.
        error: String,
        /// `Retry-After` seconds, when the server sent one (backpressure).
        retry_after: Option<u64>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unreachable(e) => write!(f, "server unreachable: {e}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Api { status, error, .. } => {
                write!(f, "server returned {status}: {error}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A `dominod` client bound to one server address.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// A client for the server at `addr` (e.g. `127.0.0.1:7171`).
    pub fn new(addr: impl Into<String>) -> Self {
        ServeClient { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `blocking`: whether this request may legitimately wait on job
    /// progress (long-polls, event streams, sync submits). Those get no
    /// read timeout — the server sends nothing until the job is terminal,
    /// and a job may queue and run for arbitrarily long — while immediate
    /// requests keep a timeout so a wedged server cannot hang the CLI.
    fn connect(&self, blocking: bool) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Unreachable(format!("{}: {e}", self.addr)))?;
        let timeout = if blocking {
            None
        } else {
            Some(Duration::from_secs(30))
        };
        stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(stream)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, ClientError> {
        // A `?wait=1` request blocks until the job is terminal.
        let blocking = path.ends_with("wait=1");
        let mut stream = self.connect(blocking)?;
        write_request(&mut stream, &self.addr, method, path, body)?;
        let response = read_response(&mut stream).map_err(|e| ClientError::Io(e.to_string()))?;
        check_status(&response)?;
        Ok(response)
    }

    fn request_json(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Json, ClientError> {
        let response = self.request(method, path, body)?;
        parse_body(&response)
    }

    /// `POST /jobs`: submits a spec, returning the admission reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 429 (and `retry_after`) when the
    /// queue is full, 400 for invalid specs, 503 while draining.
    pub fn submit(&self, spec: &JobSpec) -> Result<SubmitReply, ClientError> {
        let body = spec.to_json().serialize();
        let v = self.request_json("POST", "/jobs", Some(body.as_bytes()))?;
        SubmitReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `POST /jobs?wait=1`: submit and wait in one round trip, returning
    /// the completed outcome as the engine's exact serialized JSON text —
    /// the cheapest warm-cache path (one connection per job).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`] for admission, plus
    /// [`ClientError::Api`] with 502/409 if the job failed or was
    /// cancelled.
    pub fn run_sync(&self, spec: &JobSpec) -> Result<String, ClientError> {
        let body = spec.to_json().serialize();
        let response = self.request("POST", "/jobs?wait=1", Some(body.as_bytes()))?;
        response
            .text()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /jobs/:id`: the job's status document. With `wait`, blocks
    /// until the job is terminal.
    pub fn status(&self, id: u64, wait: bool) -> Result<StatusReply, ClientError> {
        let path = format!("/jobs/{id}{}", if wait { "?wait=1" } else { "" });
        let v = self.request_json("GET", &path, None)?;
        StatusReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /jobs/:id/result`: the completed outcome as the engine's exact
    /// serialized JSON text. With `wait`, blocks until terminal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 502 if the job failed, 409 if it
    /// was cancelled or is not finished.
    pub fn result(&self, id: u64, wait: bool) -> Result<String, ClientError> {
        let path = format!("/jobs/{id}/result{}", if wait { "?wait=1" } else { "" });
        let response = self.request("GET", &path, None)?;
        response
            .text()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /jobs/:id/events`: streams the job's lifecycle events,
    /// invoking `on_event` for each as it arrives, until the stream ends
    /// (terminal event or server drain).
    pub fn events(
        &self,
        id: u64,
        mut on_event: impl FnMut(&EventRecord),
    ) -> Result<Vec<EventRecord>, ClientError> {
        // The event stream blocks between chunks for as long as the job
        // runs; no read timeout.
        let mut stream = self.connect(true)?;
        write_request(
            &mut stream,
            &self.addr,
            "GET",
            &format!("/jobs/{id}/events"),
            None,
        )?;
        let mut events = Vec::new();
        let mut pending = String::new();
        let mut parse_failure: Option<String> = None;
        let response = read_response_streaming(&mut stream, |chunk| {
            pending.push_str(&String::from_utf8_lossy(chunk));
            while let Some(newline) = pending.find('\n') {
                let line: String = pending.drain(..=newline).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse(line)
                    .map_err(|e| e.to_string())
                    .and_then(|v| EventRecord::from_json(&v).map_err(|e| e.to_string()))
                {
                    Ok(event) => {
                        on_event(&event);
                        events.push(event);
                    }
                    // A line we cannot decode must not vanish silently —
                    // dropping (say) the terminal event would make the
                    // caller misread a finished job as unfinished.
                    Err(e) if parse_failure.is_none() => {
                        parse_failure = Some(format!("undecodable event '{line}': {e}"));
                    }
                    Err(_) => {}
                }
            }
        })
        .map_err(|e| ClientError::Io(e.to_string()))?;
        check_status(&response)?;
        if let Some(failure) = parse_failure {
            return Err(ClientError::Protocol(failure));
        }
        Ok(events)
    }

    /// `DELETE /jobs/:id`: requests cancellation; returns the resulting
    /// status (queued jobs cancel immediately, running jobs are
    /// cooperative).
    pub fn cancel(&self, id: u64) -> Result<StatusReply, ClientError> {
        let v = self.request_json("DELETE", &format!("/jobs/{id}"), None)?;
        StatusReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> Result<MetricsReply, ClientError> {
        let v = self.request_json("GET", "/metrics", None)?;
        MetricsReply::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /healthz`. Returns the raw health document.
    pub fn healthz(&self) -> Result<Json, ClientError> {
        self.request_json("GET", "/healthz", None)
    }

    /// `POST /shutdown`: asks the server to drain and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request("POST", "/shutdown", None).map(|_| ())
    }
}

fn write_request(
    stream: &mut TcpStream,
    host: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(), ClientError> {
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::Io(e.to_string()))
}

fn parse_body(response: &Response) -> Result<Json, ClientError> {
    let text = response
        .text()
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
    parse(&text).map_err(|e| ClientError::Protocol(e.to_string()))
}

fn check_status(response: &Response) -> Result<(), ClientError> {
    if (200..300).contains(&response.status) {
        return Ok(());
    }
    let error = parse_body(response)
        .ok()
        .and_then(|v| ErrorReply::from_json(&v).ok())
        .map(|e| e.error)
        .unwrap_or_else(|| format!("(no error body, {} bytes)", response.body.len()));
    Err(ClientError::Api {
        status: response.status,
        error,
        retry_after: response.header("retry-after").and_then(|v| v.parse().ok()),
    })
}
