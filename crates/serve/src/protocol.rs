//! The wire protocol: typed request/response bodies and their JSON codecs.
//!
//! Every body on the wire is one JSON document produced by the engine's
//! deterministic writer ([`domino_engine::json`]), so responses are
//! byte-stable: serializing the same reply twice yields identical text.
//! Job submissions reuse [`domino_engine::JobSpec`]'s own codec — the
//! service adds no spec dialect of its own — and completed outcomes travel
//! as the *exact* serialized [`FlowOutcome`](domino_engine::FlowOutcome)
//! text the engine produced, which is what makes the wire byte-identical
//! to a local `dominoc run` (pinned by the serve integration tests).
//!
//! Every reply type here round-trips through its codec
//! (`from_json(to_json(x)) == x`), pinned by proptests at the bottom of
//! this module.

use std::fmt;

use domino_engine::json::Json;
use domino_engine::EngineError;

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted and waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished successfully; the outcome is available.
    Completed,
    /// The flow failed; the error text is available.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// The wire tag for this status.
    pub fn tag(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "completed" => Some(JobStatus::Completed),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// `202 Accepted` body for `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReply {
    /// Server-assigned job id (monotonic per server instance).
    pub id: u64,
    /// Display name echoed from the spec.
    pub name: String,
    /// The job's content-address (engine cache key).
    pub key: String,
    /// State at admission time: [`JobStatus::Queued`] for jobs that
    /// entered the queue, [`JobStatus::Completed`] for warm submissions
    /// the cache answered at admission (HTTP 200 instead of 202).
    pub status: JobStatus,
    /// Queue depth right after this admission.
    pub queue_depth: u64,
}

impl SubmitReply {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("name", Json::Str(self.name.clone())),
            ("key", Json::Str(self.key.clone())),
            ("status", Json::Str(self.status.tag().to_string())),
            ("queue_depth", Json::Num(self.queue_depth as f64)),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(SubmitReply {
            id: req_u64(v, "id")?,
            name: req_str(v, "name")?,
            key: req_str(v, "key")?,
            status: req_status(v)?,
            queue_depth: req_u64(v, "queue_depth")?,
        })
    }
}

/// `GET /jobs/:id` body: everything known about one job.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReply {
    /// Server-assigned job id.
    pub id: u64,
    /// Display name from the spec.
    pub name: String,
    /// The job's content-address (engine cache key).
    pub key: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether the outcome was answered from the result cache
    /// (`None` until completed).
    pub cached: Option<bool>,
    /// Milliseconds spent queued (`None` until claimed).
    pub queue_ms: Option<u64>,
    /// Milliseconds spent executing (`None` until finished).
    pub exec_ms: Option<u64>,
    /// Rendered error for failed jobs.
    pub error: Option<String>,
    /// The outcome document for completed jobs. Parsed from — and
    /// re-serializing to — the exact bytes the engine produced.
    pub outcome: Option<Json>,
}

impl StatusReply {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("name", Json::Str(self.name.clone())),
            ("key", Json::Str(self.key.clone())),
            ("status", Json::Str(self.status.tag().to_string())),
            ("cached", opt_bool(self.cached)),
            ("queue_ms", opt_u64(self.queue_ms)),
            ("exec_ms", opt_u64(self.exec_ms)),
            ("error", opt_str(&self.error)),
            ("outcome", self.outcome.clone().unwrap_or(Json::Null)),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(StatusReply {
            id: req_u64(v, "id")?,
            name: req_str(v, "name")?,
            key: req_str(v, "key")?,
            status: req_status(v)?,
            cached: opt_bool_from(v, "cached"),
            queue_ms: opt_u64_from(v, "queue_ms"),
            exec_ms: opt_u64_from(v, "exec_ms"),
            error: opt_str_from(v, "error"),
            outcome: match v.get("outcome") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.clone()),
            },
        })
    }
}

/// What kind of lifecycle transition an [`EventRecord`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Admitted into the queue.
    Queued,
    /// Claimed by a worker.
    Started,
    /// Completed successfully.
    Finished,
    /// The flow failed.
    Failed,
    /// Cancelled.
    Cancelled,
}

impl EventKind {
    /// The wire tag for this event kind.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Queued => "queued",
            EventKind::Started => "started",
            EventKind::Finished => "finished",
            EventKind::Failed => "failed",
            EventKind::Cancelled => "cancelled",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "queued" => Some(EventKind::Queued),
            "started" => Some(EventKind::Started),
            "finished" => Some(EventKind::Finished),
            "failed" => Some(EventKind::Failed),
            "cancelled" => Some(EventKind::Cancelled),
            _ => None,
        }
    }

    /// `true` for events after which no further events can arrive.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            EventKind::Finished | EventKind::Failed | EventKind::Cancelled
        )
    }
}

/// One line of the `GET /jobs/:id/events` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Per-job sequence number, starting at 0 with the `queued` event.
    pub seq: u64,
    /// The job this event belongs to.
    pub id: u64,
    /// What happened.
    pub kind: EventKind,
    /// Display name of the job.
    pub name: String,
    /// For `finished`: whether the cache answered it.
    pub cached: Option<bool>,
    /// For terminal events: milliseconds since the job was claimed
    /// (`queued`/`cancelled-while-queued` events carry `None`).
    pub elapsed_ms: Option<u64>,
    /// For `failed`: the rendered error.
    pub error: Option<String>,
}

impl EventRecord {
    /// Serializes to the wire JSON (one line of the event stream).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::Num(self.seq as f64)),
            ("id", Json::Num(self.id as f64)),
            ("event", Json::Str(self.kind.tag().to_string())),
            ("name", Json::Str(self.name.clone())),
            ("cached", opt_bool(self.cached)),
            ("elapsed_ms", opt_u64(self.elapsed_ms)),
            ("error", opt_str(&self.error)),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .and_then(EventKind::from_tag)
            .ok_or_else(|| missing("event"))?;
        Ok(EventRecord {
            seq: req_u64(v, "seq")?,
            id: req_u64(v, "id")?,
            kind,
            name: req_str(v, "name")?,
            cached: opt_bool_from(v, "cached"),
            elapsed_ms: opt_u64_from(v, "elapsed_ms"),
            error: opt_str_from(v, "error"),
        })
    }
}

/// Result-cache counters as exposed by `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from memory.
    pub memory_hits: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that recomputed.
    pub misses: u64,
    /// Outcomes inserted.
    pub stores: u64,
    /// Entries currently on disk (0 for memory-only caches).
    pub disk_entries: u64,
    /// Corrupt disk entries detected and quarantined (served as misses,
    /// never as data).
    pub corrupt_evictions: u64,
}

impl CacheCounters {
    /// Total hits across both backends.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("memory_hits", Json::Num(self.memory_hits as f64)),
            ("disk_hits", Json::Num(self.disk_hits as f64)),
            ("misses", Json::Num(self.misses as f64)),
            ("stores", Json::Num(self.stores as f64)),
            ("disk_entries", Json::Num(self.disk_entries as f64)),
            (
                "corrupt_evictions",
                Json::Num(self.corrupt_evictions as f64),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(CacheCounters {
            memory_hits: req_u64(v, "memory_hits")?,
            disk_hits: req_u64(v, "disk_hits")?,
            misses: req_u64(v, "misses")?,
            stores: req_u64(v, "stores")?,
            disk_entries: req_u64(v, "disk_entries")?,
            // Absent on pre-quarantine servers: a gateway must keep
            // parsing their metrics during a rolling upgrade.
            corrupt_evictions: opt_u64_from(v, "corrupt_evictions").unwrap_or(0),
        })
    }
}

/// Warm-state snapshot-store counters as exposed by `GET /metrics` —
/// the restart-warm proof on the wire: after a restart over the same
/// `--snapshot-dir`, the first submission shows `hits > 0` with
/// `kernel_builds == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotCounters {
    /// Probes answered by a verified on-disk snapshot.
    pub hits: u64,
    /// Probes that found nothing usable.
    pub misses: u64,
    /// Snapshots written to disk.
    pub stores: u64,
    /// BDD kernels actually built in this process (the zero a warm
    /// restart asserts on).
    pub kernel_builds: u64,
    /// Snapshots that failed verification and were quarantined (served
    /// as misses, never as data).
    pub corrupt_evictions: u64,
    /// Snapshots evicted by the disk byte budget.
    pub disk_evictions: u64,
    /// Snapshot entries currently on disk.
    pub disk_entries: u64,
    /// Bytes of snapshot entries currently on disk.
    pub disk_bytes: u64,
}

impl SnapshotCounters {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("hits", Json::Num(self.hits as f64)),
            ("misses", Json::Num(self.misses as f64)),
            ("stores", Json::Num(self.stores as f64)),
            ("kernel_builds", Json::Num(self.kernel_builds as f64)),
            (
                "corrupt_evictions",
                Json::Num(self.corrupt_evictions as f64),
            ),
            ("disk_evictions", Json::Num(self.disk_evictions as f64)),
            ("disk_entries", Json::Num(self.disk_entries as f64)),
            ("disk_bytes", Json::Num(self.disk_bytes as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(SnapshotCounters {
            hits: req_u64(v, "hits")?,
            misses: req_u64(v, "misses")?,
            stores: req_u64(v, "stores")?,
            kernel_builds: req_u64(v, "kernel_builds")?,
            corrupt_evictions: opt_u64_from(v, "corrupt_evictions").unwrap_or(0),
            disk_evictions: opt_u64_from(v, "disk_evictions").unwrap_or(0),
            disk_entries: opt_u64_from(v, "disk_entries").unwrap_or(0),
            disk_bytes: opt_u64_from(v, "disk_bytes").unwrap_or(0),
        })
    }
}

/// One failpoint site's counters, as exposed by `GET /metrics` when the
/// process runs with an active fault-injection schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointCounter {
    /// Site name (e.g. `engine.cache.disk_write`).
    pub site: String,
    /// The schedule the site runs (`once`, `every(3)`, ...).
    pub mode: String,
    /// Times the site was evaluated.
    pub hits: u64,
    /// Evaluations that injected the fault.
    pub fires: u64,
}

impl FailpointCounter {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("site", Json::Str(self.site.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("hits", Json::Num(self.hits as f64)),
            ("fires", Json::Num(self.fires as f64)),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(FailpointCounter {
            site: req_str(v, "site")?,
            mode: req_str(v, "mode")?,
            hits: req_u64(v, "hits")?,
            fires: req_u64(v, "fires")?,
        })
    }
}

/// Connection-reactor counters as exposed by `GET /metrics` — the
/// observable proof that connection handling is event-driven: under
/// thousands of kept-alive clients, `open_connections` scales while the
/// `workers` / handler thread counts do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReactorCounters {
    /// Connections currently registered with the reactor.
    pub open_connections: u64,
    /// Connections accepted since start (including ones since closed).
    pub accepts: u64,
    /// Connections closed by the idle-timeout wheel.
    pub timeouts: u64,
}

impl ReactorCounters {
    /// Serializes to the wire JSON.
    pub fn to_json(self) -> Json {
        Json::obj(vec![
            ("open_connections", Json::Num(self.open_connections as f64)),
            ("accepts", Json::Num(self.accepts as f64)),
            ("timeouts", Json::Num(self.timeouts as f64)),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(ReactorCounters {
            open_connections: req_u64(v, "open_connections")?,
            accepts: req_u64(v, "accepts")?,
            timeouts: req_u64(v, "timeouts")?,
        })
    }
}

/// `GET /metrics` body: queue, lifecycle counters, stage timings, cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReply {
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Admission-queue capacity.
    pub queue_capacity: u64,
    /// Worker threads executing jobs.
    pub workers: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Jobs admitted (`202`).
    pub submitted: u64,
    /// Jobs rejected with `429` (queue full). Nothing else produces one.
    pub rejected: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs whose flow failed.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Completed jobs answered from the result cache.
    pub warm: u64,
    /// Total milliseconds jobs spent in the queue stage (admission →
    /// claim), summed over claimed jobs.
    pub queue_wait_ms: u64,
    /// Total milliseconds jobs spent in the execute stage (claim →
    /// terminal), summed over finished jobs.
    pub exec_ms: u64,
    /// Result-cache counters (`None` when the server runs uncached).
    pub cache: Option<CacheCounters>,
    /// Warm-state snapshot-store counters (`None` when the server runs
    /// without `--snapshot-dir`, and in documents from pre-snapshot
    /// servers — rolling upgrade).
    pub snapshot: Option<SnapshotCounters>,
    /// Connection-reactor counters (`None` in documents from
    /// pre-reactor servers — rolling upgrade).
    pub reactor: Option<ReactorCounters>,
    /// Fault-injection site counters; empty unless the process runs with
    /// an active failpoint schedule (chaos testing).
    pub failpoints: Vec<FailpointCounter>,
}

impl MetricsReply {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_depth", Json::Num(self.queue_depth as f64)),
            ("queue_capacity", Json::Num(self.queue_capacity as f64)),
            ("workers", Json::Num(self.workers as f64)),
            ("uptime_ms", Json::Num(self.uptime_ms as f64)),
            ("submitted", Json::Num(self.submitted as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("cancelled", Json::Num(self.cancelled as f64)),
            ("warm", Json::Num(self.warm as f64)),
            ("queue_wait_ms", Json::Num(self.queue_wait_ms as f64)),
            ("exec_ms", Json::Num(self.exec_ms as f64)),
            (
                "cache",
                self.cache.map(CacheCounters::to_json).unwrap_or(Json::Null),
            ),
            (
                "snapshot",
                self.snapshot
                    .map(SnapshotCounters::to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "reactor",
                self.reactor
                    .map(ReactorCounters::to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "failpoints",
                Json::Arr(
                    self.failpoints
                        .iter()
                        .map(FailpointCounter::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(MetricsReply {
            queue_depth: req_u64(v, "queue_depth")?,
            queue_capacity: req_u64(v, "queue_capacity")?,
            workers: req_u64(v, "workers")?,
            uptime_ms: req_u64(v, "uptime_ms")?,
            submitted: req_u64(v, "submitted")?,
            rejected: req_u64(v, "rejected")?,
            completed: req_u64(v, "completed")?,
            failed: req_u64(v, "failed")?,
            cancelled: req_u64(v, "cancelled")?,
            warm: req_u64(v, "warm")?,
            queue_wait_ms: req_u64(v, "queue_wait_ms")?,
            exec_ms: req_u64(v, "exec_ms")?,
            cache: match v.get("cache") {
                None | Some(Json::Null) => None,
                Some(j) => Some(CacheCounters::from_json(j)?),
            },
            // Absent on pre-snapshot servers (rolling upgrade).
            snapshot: match v.get("snapshot") {
                None | Some(Json::Null) => None,
                Some(j) => Some(SnapshotCounters::from_json(j)?),
            },
            // Absent on pre-reactor servers (rolling upgrade).
            reactor: match v.get("reactor") {
                None | Some(Json::Null) => None,
                Some(j) => Some(ReactorCounters::from_json(j)?),
            },
            // Absent on pre-failpoint servers (rolling upgrade).
            failpoints: match v.get("failpoints").and_then(Json::as_arr) {
                Some(items) => items
                    .iter()
                    .map(FailpointCounter::from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// One backend's health as reported in the gateway's `GET /metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendHealthDoc {
    /// Backend address (`host:port`).
    pub addr: String,
    /// Whether the last contact (probe or routed request) succeeded.
    pub healthy: bool,
    /// Times this backend transitioned healthy → down.
    pub down_transitions: u64,
    /// Circuit-breaker state label: `closed`, `open` or `half-open`.
    pub breaker: String,
}

impl BackendHealthDoc {
    /// Serializes to the wire JSON. Field order is part of the wire
    /// contract — fleet smoke checks grep for `"addr":...,"healthy":...`
    /// adjacency.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("addr", Json::Str(self.addr.clone())),
            ("healthy", Json::Bool(self.healthy)),
            ("down_transitions", Json::Num(self.down_transitions as f64)),
            ("breaker", Json::Str(self.breaker.clone())),
        ])
    }

    /// Parses the wire JSON leniently (absent fields default — documents
    /// from older gateways keep parsing during rolling upgrades).
    pub fn from_json(v: &Json) -> Self {
        BackendHealthDoc {
            addr: v
                .get("addr")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            healthy: v.get("healthy").and_then(Json::as_bool).unwrap_or(false),
            down_transitions: v
                .get("down_transitions")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            // Absent in documents from pre-breaker gateways (rolling
            // upgrade): closed is the only state such a gateway can be in.
            breaker: v
                .get("breaker")
                .and_then(Json::as_str)
                .unwrap_or("closed")
                .to_string(),
        }
    }
}

/// The gateway's `GET /metrics` document (`dominogw`'s counterpart of
/// [`MetricsReply`]). Both servers now assemble their documents through
/// this module instead of by hand, so the shared sections — failpoints,
/// reactor — cannot drift between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayMetricsDoc {
    /// Milliseconds since the gateway started.
    pub uptime_ms: u64,
    /// Jobs forwarded to a backend (any reply status).
    pub routed: u64,
    /// Backend `429`s propagated to callers.
    pub rejected: u64,
    /// Submissions answered by a failover backend.
    pub failovers: u64,
    /// Cold-home submissions warmed from a peer before routing.
    pub peer_fills: u64,
    /// Submissions refused with `503` (no reachable backend).
    pub unroutable: u64,
    /// Sync submissions coalesced onto an in-flight leader's reply.
    pub coalesced: u64,
    /// Connection-reactor counters (`None` in documents from
    /// pre-reactor gateways — rolling upgrade).
    pub reactor: Option<ReactorCounters>,
    /// Per-backend health and breaker state.
    pub backends: Vec<BackendHealthDoc>,
    /// Failpoint site counters — empty unless the gateway runs with an
    /// active fault-injection schedule (chaos testing).
    pub failpoints: Vec<FailpointCounter>,
}

impl GatewayMetricsDoc {
    /// Serializes to the wire JSON (field order is part of the wire
    /// contract; see [`BackendHealthDoc::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("uptime_ms", Json::Num(self.uptime_ms as f64)),
            ("routed", Json::Num(self.routed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("failovers", Json::Num(self.failovers as f64)),
            ("peer_fills", Json::Num(self.peer_fills as f64)),
            ("unroutable", Json::Num(self.unroutable as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            (
                "reactor",
                self.reactor
                    .map(ReactorCounters::to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "backends",
                Json::Arr(
                    self.backends
                        .iter()
                        .map(BackendHealthDoc::to_json)
                        .collect(),
                ),
            ),
            (
                "failpoints",
                Json::Arr(
                    self.failpoints
                        .iter()
                        .map(FailpointCounter::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the `GET /metrics` document of a gateway.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped required fields.
    /// Sections added after the first gateway release (`coalesced`,
    /// `reactor`, backend `breaker`) parse leniently for rolling
    /// upgrades.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let backends = match v.get("backends") {
            Some(Json::Arr(items)) => items.iter().map(BackendHealthDoc::from_json).collect(),
            _ => Vec::new(),
        };
        let failpoints = match v.get("failpoints") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|f| FailpointCounter::from_json(f).ok())
                .collect(),
            _ => Vec::new(),
        };
        Ok(GatewayMetricsDoc {
            uptime_ms: req_u64(v, "uptime_ms")?,
            routed: req_u64(v, "routed")?,
            rejected: req_u64(v, "rejected")?,
            failovers: req_u64(v, "failovers")?,
            peer_fills: req_u64(v, "peer_fills")?,
            unroutable: req_u64(v, "unroutable")?,
            // Absent in pre-coalescing documents (rolling upgrade).
            coalesced: v.get("coalesced").and_then(Json::as_u64).unwrap_or(0),
            // Absent in pre-reactor documents (rolling upgrade).
            reactor: match v.get("reactor") {
                None | Some(Json::Null) => None,
                Some(j) => Some(ReactorCounters::from_json(j)?),
            },
            backends,
            failpoints,
        })
    }
}

/// A `/metrics` document of either flavor: `dominod`'s server sections
/// (queue/cache/reactor/failpoints) or `dominogw`'s gateway sections
/// (routing counters/backends/reactor/failpoints). One entry point for
/// tools — the bench harness, `dominoc` — that scrape either server kind
/// without knowing in advance which they are talking to.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// The `dominod` sections, when the document came from a backend.
    pub server: Option<MetricsReply>,
    /// The `dominogw` sections, when the document came from a gateway.
    pub gateway: Option<GatewayMetricsDoc>,
}

impl MetricsDoc {
    /// Wraps a server-flavor document.
    pub fn server(reply: MetricsReply) -> Self {
        MetricsDoc {
            server: Some(reply),
            gateway: None,
        }
    }

    /// Wraps a gateway-flavor document.
    pub fn gateway(doc: GatewayMetricsDoc) -> Self {
        MetricsDoc {
            server: None,
            gateway: Some(doc),
        }
    }

    /// Reactor counters from whichever flavor is present.
    pub fn reactor(&self) -> Option<ReactorCounters> {
        self.server
            .as_ref()
            .and_then(|s| s.reactor)
            .or_else(|| self.gateway.as_ref().and_then(|g| g.reactor))
    }

    /// Serializes the present flavor to its wire JSON (an empty object
    /// when neither section is set).
    pub fn to_json(&self) -> Json {
        if let Some(server) = &self.server {
            server.to_json()
        } else if let Some(gateway) = &self.gateway {
            gateway.to_json()
        } else {
            Json::obj(Vec::new())
        }
    }

    /// Parses either flavor, detected by its signature fields: gateway
    /// documents carry `routed`, server documents `queue_depth`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] when the document matches neither flavor or
    /// a required field of the detected flavor is missing.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        if v.get("routed").is_some() {
            return Ok(MetricsDoc::gateway(GatewayMetricsDoc::from_json(v)?));
        }
        if v.get("queue_depth").is_some() {
            return Ok(MetricsDoc::server(MetricsReply::from_json(v)?));
        }
        Err(EngineError::Spec(
            "not a metrics document: neither 'routed' nor 'queue_depth' present".to_string(),
        ))
    }
}

/// Error body sent with every non-2xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Human-readable reason.
    pub error: String,
}

impl ErrorReply {
    /// An error body with the given reason.
    pub fn new(error: impl Into<String>) -> Self {
        ErrorReply {
            error: error.into(),
        }
    }

    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![("error", Json::Str(self.error.clone()))])
    }

    /// Parses the wire JSON.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] if the `error` field is missing.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(ErrorReply {
            error: req_str(v, "error")?,
        })
    }
}

// ---- small codec helpers ----

fn missing(key: &str) -> EngineError {
    EngineError::Spec(format!("missing or mistyped field '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, EngineError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(key))
}

fn req_str(v: &Json, key: &str) -> Result<String, EngineError> {
    Ok(v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| missing(key))?
        .to_string())
}

fn req_status(v: &Json) -> Result<JobStatus, EngineError> {
    v.get("status")
        .and_then(Json::as_str)
        .and_then(JobStatus::from_tag)
        .ok_or_else(|| missing("status"))
}

fn opt_bool(v: Option<bool>) -> Json {
    v.map(Json::Bool).unwrap_or(Json::Null)
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null)
}

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref()
        .map(|s| Json::Str(s.clone()))
        .unwrap_or(Json::Null)
}

fn opt_bool_from(v: &Json, key: &str) -> Option<bool> {
    v.get(key).and_then(Json::as_bool)
}

fn opt_u64_from(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

fn opt_str_from(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Millisecond/counter values stay below 2^40 so they survive the
    /// `f64`-carried `Json::Num` exactly (the wire uses the engine's JSON
    /// model; only sim seeds need the full u64 range, and those travel
    /// through `JobSpec`'s own string codec).
    const COUNTER: std::ops::Range<u64> = 0..(1 << 40);

    fn status_strategy() -> impl Strategy<Value = JobStatus> {
        (0u64..5).prop_map(|i| {
            [
                JobStatus::Queued,
                JobStatus::Running,
                JobStatus::Completed,
                JobStatus::Failed,
                JobStatus::Cancelled,
            ][i as usize]
        })
    }

    fn kind_strategy() -> impl Strategy<Value = EventKind> {
        (0u64..5).prop_map(|i| {
            [
                EventKind::Queued,
                EventKind::Started,
                EventKind::Finished,
                EventKind::Failed,
                EventKind::Cancelled,
            ][i as usize]
        })
    }

    fn name_strategy() -> impl Strategy<Value = String> {
        prop::collection::vec(0usize..64, 0..12).prop_map(|chars| {
            chars
                .into_iter()
                .map(|c| {
                    // Exercise escaping: quotes, backslashes, newlines,
                    // control characters and non-ASCII all appear.
                    [
                        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\u{1}', 'é', '∑', '-',
                    ][c % 12]
                })
                .collect()
        })
    }

    fn opt<S: Strategy + 'static>(s: S) -> impl Strategy<Value = Option<S::Value>>
    where
        S::Value: Clone + std::fmt::Debug,
    {
        (any::<bool>(), s).prop_map(|(some, v)| if some { Some(v) } else { None })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn submit_reply_roundtrips(
            id in COUNTER, depth in COUNTER, name in name_strategy(), status in status_strategy()
        ) {
            let reply = SubmitReply {
                id,
                name,
                key: format!("{id:032x}"),
                status,
                queue_depth: depth,
            };
            let text = reply.to_json().serialize();
            let v = domino_engine::json::parse(&text).unwrap();
            prop_assert_eq!(SubmitReply::from_json(&v).unwrap(), reply);
        }

        #[test]
        fn status_reply_roundtrips(
            id in COUNTER,
            name in name_strategy(),
            status in status_strategy(),
            cached in opt(any::<bool>()),
            queue_ms in opt(COUNTER),
            exec_ms in opt(COUNTER),
            error in opt(name_strategy()),
            has_outcome: bool
        ) {
            let outcome = has_outcome.then(|| {
                Json::obj(vec![
                    ("name", Json::Str("frg1".into())),
                    ("pis", Json::Num(31.0)),
                ])
            });
            let reply = StatusReply {
                id,
                name,
                key: "k".repeat(8),
                status,
                cached,
                queue_ms,
                exec_ms,
                error,
                outcome,
            };
            let text = reply.to_json().serialize();
            let v = domino_engine::json::parse(&text).unwrap();
            prop_assert_eq!(StatusReply::from_json(&v).unwrap(), reply);
        }

        #[test]
        fn event_record_roundtrips(
            seq in COUNTER,
            id in COUNTER,
            kind in kind_strategy(),
            name in name_strategy(),
            cached in opt(any::<bool>()),
            elapsed in opt(COUNTER)
        ) {
            let record = EventRecord {
                seq,
                id,
                kind,
                name,
                cached,
                elapsed_ms: elapsed,
                error: kind.is_terminal().then(|| "boom \"quoted\"".to_string()),
            };
            let text = record.to_json().serialize();
            let v = domino_engine::json::parse(&text).unwrap();
            prop_assert_eq!(EventRecord::from_json(&v).unwrap(), record);
        }

        #[test]
        fn metrics_reply_roundtrips(
            a in COUNTER, b in COUNTER, c in COUNTER, d in COUNTER,
            e in COUNTER, with_cache: bool
        ) {
            let reply = MetricsReply {
                queue_depth: a,
                queue_capacity: b,
                workers: c,
                uptime_ms: d,
                submitted: e,
                rejected: a ^ b,
                completed: b ^ c,
                failed: c ^ d,
                cancelled: d ^ e,
                warm: a ^ e,
                queue_wait_ms: a.wrapping_add(b) & ((1 << 40) - 1),
                exec_ms: c.wrapping_add(d) & ((1 << 40) - 1),
                cache: with_cache.then_some(CacheCounters {
                    memory_hits: a,
                    disk_hits: b,
                    misses: c,
                    stores: d,
                    disk_entries: e,
                    corrupt_evictions: a ^ c,
                }),
                snapshot: with_cache.then_some(SnapshotCounters {
                    hits: a,
                    misses: b,
                    stores: c,
                    kernel_builds: d,
                    corrupt_evictions: e,
                    disk_evictions: a ^ b,
                    disk_entries: b ^ d,
                    disk_bytes: a.wrapping_add(e) & ((1 << 40) - 1),
                }),
                reactor: with_cache.then_some(ReactorCounters {
                    open_connections: a,
                    accepts: b,
                    timeouts: c ^ e,
                }),
                failpoints: if with_cache {
                    vec![FailpointCounter {
                        site: "engine.cache.disk_write".into(),
                        mode: "every(3)".into(),
                        hits: a,
                        fires: b,
                    }]
                } else {
                    Vec::new()
                },
            };
            let text = reply.to_json().serialize();
            let v = domino_engine::json::parse(&text).unwrap();
            prop_assert_eq!(MetricsReply::from_json(&v).unwrap(), reply);
        }

        #[test]
        fn gateway_metrics_doc_roundtrips(
            a in COUNTER, b in COUNTER, c in COUNTER, d in COUNTER,
            e in COUNTER, with_extras: bool
        ) {
            let doc = GatewayMetricsDoc {
                uptime_ms: a,
                routed: b,
                rejected: c,
                failovers: d,
                peer_fills: e,
                unroutable: a ^ b,
                coalesced: b ^ c,
                reactor: with_extras.then_some(ReactorCounters {
                    open_connections: d,
                    accepts: e,
                    timeouts: a ^ d,
                }),
                backends: vec![BackendHealthDoc {
                    addr: "127.0.0.1:7171".into(),
                    healthy: with_extras,
                    down_transitions: c ^ d,
                    breaker: "half-open".into(),
                }],
                failpoints: if with_extras {
                    vec![FailpointCounter {
                        site: "fleet.gateway.relay".into(),
                        mode: "once".into(),
                        hits: a,
                        fires: b,
                    }]
                } else {
                    Vec::new()
                },
            };
            let text = doc.to_json().serialize();
            let v = domino_engine::json::parse(&text).unwrap();
            prop_assert_eq!(GatewayMetricsDoc::from_json(&v).unwrap(), doc.clone());
            // Flavor detection routes the same bytes through MetricsDoc.
            let unified = MetricsDoc::from_json(&v).unwrap();
            prop_assert_eq!(unified.gateway, Some(doc));
            prop_assert_eq!(unified.server, None);
        }
    }

    #[test]
    fn metrics_doc_detects_flavors_and_rejects_neither() {
        let server = domino_engine::json::parse(
            r#"{"queue_depth":0,"queue_capacity":4,"workers":1,"uptime_ms":9,
                "submitted":0,"rejected":0,"completed":0,"failed":0,
                "cancelled":0,"warm":0,"queue_wait_ms":0,"exec_ms":0}"#,
        )
        .unwrap();
        let doc = MetricsDoc::from_json(&server).unwrap();
        assert!(doc.server.is_some() && doc.gateway.is_none());
        assert_eq!(doc.reactor(), None, "pre-reactor documents parse");

        let gateway = domino_engine::json::parse(
            r#"{"uptime_ms":9,"routed":3,"rejected":0,"failovers":1,
                "peer_fills":0,"unroutable":0,
                "reactor":{"open_connections":2,"accepts":5,"timeouts":1}}"#,
        )
        .unwrap();
        let doc = MetricsDoc::from_json(&gateway).unwrap();
        assert!(doc.gateway.is_some() && doc.server.is_none());
        assert_eq!(
            doc.reactor(),
            Some(ReactorCounters {
                open_connections: 2,
                accepts: 5,
                timeouts: 1
            })
        );

        let neither = domino_engine::json::parse(r#"{"status":"ok"}"#).unwrap();
        assert!(MetricsDoc::from_json(&neither).is_err());
    }

    #[test]
    fn error_reply_roundtrips() {
        let reply = ErrorReply::new("queue full: 4 jobs waiting");
        let v = domino_engine::json::parse(&reply.to_json().serialize()).unwrap();
        assert_eq!(ErrorReply::from_json(&v).unwrap(), reply);
    }

    #[test]
    fn unknown_status_tag_is_rejected() {
        let v = domino_engine::json::parse(
            r#"{"id":1,"name":"x","key":"k","status":"nonesuch","queue_depth":0}"#,
        )
        .unwrap();
        assert!(SubmitReply::from_json(&v).is_err());
    }

    #[test]
    fn terminal_flags_are_consistent() {
        for s in [JobStatus::Queued, JobStatus::Running] {
            assert!(!s.is_terminal());
        }
        for s in [
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert!(s.is_terminal());
        }
        assert!(!EventKind::Queued.is_terminal());
        assert!(!EventKind::Started.is_terminal());
        assert!(EventKind::Finished.is_terminal());
    }
}
