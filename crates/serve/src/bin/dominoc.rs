//! `dominoc` — drive the domino synthesis flow from the command line,
//! locally or against a `dominod` server.
//!
//! ```text
//! dominoc run (<file.blif> | --suite <row>)   one circuit, locally
//! dominoc batch <file.blif>...                many circuits in parallel
//! dominoc suite [--public]                    the built-in Table 1/2 suite
//! dominoc cache stats|clear --cache <dir>     disk cache maintenance
//! dominoc serve [server options]              run a dominod in the foreground
//! dominoc submit (<file.blif> | --suite <row>) --server <addr>
//! dominoc status <id> [--wait]                job status JSON
//! dominoc watch <id>                          stream lifecycle events
//! dominoc result <id> [--wait]                outcome JSON (byte-identical to a local run)
//! dominoc cancel <id>                         request cancellation
//! dominoc metrics                             server metrics JSON
//! dominoc shutdown                            graceful server drain
//! ```
//!
//! Exit status: 0 on success, 1 when a job failed or the server rejected
//! the request, 2 on usage errors, 3 when the server is unreachable.

use std::process::ExitCode;
use std::sync::Arc;

use domino_engine::{
    report, CancelToken, CircuitSource, EngineConfig, FlowEngine, JobResult, JobSpec,
    ProgressEvent, ReorderMode, ResultCache, RunObjective, SnapshotStore,
};
use domino_serve::{ClientError, ServeClient, DEFAULT_PORT};

/// Exit code for "the server could not be reached at all" — distinct from
/// exit 1 ("the job itself failed") so scripts can tell infrastructure
/// trouble from flow trouble.
const EXIT_UNREACHABLE: u8 = 3;

fn usage() -> String {
    format!(
        "usage: dominoc <command> [args]\n\
     \n\
     local flow commands:\n\
     \x20 run (<file.blif> | --suite <row>)     one circuit\n\
     \x20 batch <file.blif>...                  many circuits in parallel\n\
     \x20 suite [--public]                      built-in Table 1/2 suite\n\
     \x20 cache stats --cache <dir>             disk cache counters/entries\n\
     \x20 cache clear --cache <dir>             empty the disk cache\n\
     \x20 cache snapshots --snapshot-dir <dir>  warm-state snapshot store inspection\n\
     \n\
     server commands (against a dominod; see `dominoc serve`):\n\
     \x20 serve                                 run a server in the foreground\n\
     \x20 submit (<file.blif> | --suite <row>)  submit a job; prints its id on stdout\n\
     \x20        [--wait]                       ...or block and print the outcome JSON\n\
     \x20 status <id> [--wait]                  job status JSON\n\
     \x20 watch <id>                            stream lifecycle events (one JSON line each)\n\
     \x20 result <id> [--wait]                  outcome JSON, byte-identical to `run --jsonl`\n\
     \x20 cancel <id>                           cancel (immediate while queued, cooperative while running)\n\
     \x20 metrics                               queue/cache/timing counters JSON\n\
     \x20 shutdown                              drain admitted jobs, then exit\n\
     \n\
     flow options (run/batch/suite/submit):\n\
     \x20 --objective area|power|compare   [compare]\n\
     \x20 --p <f>                          PI probability [0.5]\n\
     \x20 --timed <fraction>               timed synthesis clock fraction\n\
     \x20 --and-penalty <f>                MP series-stack penalty\n\
     \x20 --threads <n>                    engine workers, 0 = all CPUs [0]\n\
     \x20 --cache <dir>                    disk result cache\n\
     \x20 --snapshot-dir <dir>             warm-state snapshot store (restart-warm kernels)\n\
     \x20 --jsonl <file|->                 JSONL outcomes\n\
     \x20 --sim-cycles <n>                 simulation cycles [4096]\n\
     \x20 --sim-shards <n>                 simulation stream shards [8]\n\
     \x20 --sim-threads <n>                threads per simulation, 0 = all CPUs [1]\n\
     \x20 --reorder off|auto|sift          BDD dynamic variable reordering [off]\n\
     \x20 --stats                          print BDD kernel + simulation statistics\n\
     \x20 --quiet                          suppress progress\n\
     \n\
     server options:\n\
     \x20 --server <host:port>             dominod address [127.0.0.1:{DEFAULT_PORT}]\n\
     \x20 --addr / --workers / --queue / --cache   (serve only; see `dominod --help`)\n\
     \n\
     exit codes:\n\
     \x20 0  success\n\
     \x20 1  a job failed, or the server rejected the request (400/409/429/5xx)\n\
     \x20 2  usage error\n\
     \x20 3  server unreachable (connection refused / no route)"
    )
}

#[derive(Debug)]
struct Options {
    objective: RunObjective,
    p: f64,
    timed: Option<f64>,
    and_penalty: Option<f64>,
    threads: usize,
    cache_dir: Option<String>,
    snapshot_dir: Option<String>,
    jsonl: Option<String>,
    sim_cycles: Option<usize>,
    sim_shards: Option<u32>,
    sim_threads: Option<usize>,
    reorder: ReorderMode,
    stats: bool,
    quiet: bool,
    public_only: bool,
    suite_row: Option<String>,
    server: String,
    wait: bool,
    positional: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            objective: RunObjective::Compare,
            p: 0.5,
            timed: None,
            and_penalty: None,
            threads: 0,
            cache_dir: None,
            snapshot_dir: None,
            jsonl: None,
            sim_cycles: None,
            sim_shards: None,
            sim_threads: None,
            reorder: ReorderMode::Off,
            stats: false,
            quiet: false,
            public_only: false,
            suite_row: None,
            server: format!("127.0.0.1:{DEFAULT_PORT}"),
            wait: false,
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--objective" => {
                    let v = value("--objective")?;
                    opts.objective = match v.as_str() {
                        "area" | "min-area" | "ma" => RunObjective::MinArea,
                        "power" | "min-power" | "mp" => RunObjective::MinPower,
                        "compare" | "both" => RunObjective::Compare,
                        other => return Err(format!("unknown objective '{other}'")),
                    };
                }
                "--p" => {
                    opts.p = value("--p")?
                        .parse()
                        .map_err(|_| "--p needs a number".to_string())?;
                }
                "--timed" => {
                    opts.timed = Some(
                        value("--timed")?
                            .parse()
                            .map_err(|_| "--timed needs a number".to_string())?,
                    );
                }
                "--and-penalty" => {
                    opts.and_penalty = Some(
                        value("--and-penalty")?
                            .parse()
                            .map_err(|_| "--and-penalty needs a number".to_string())?,
                    );
                }
                "--threads" => {
                    opts.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an integer".to_string())?;
                }
                "--cache" => opts.cache_dir = Some(value("--cache")?),
                "--snapshot-dir" => opts.snapshot_dir = Some(value("--snapshot-dir")?),
                "--jsonl" => opts.jsonl = Some(value("--jsonl")?),
                "--sim-cycles" => {
                    opts.sim_cycles = Some(
                        value("--sim-cycles")?
                            .parse()
                            .map_err(|_| "--sim-cycles needs an integer".to_string())?,
                    );
                }
                "--sim-shards" => {
                    let n: u32 = value("--sim-shards")?
                        .parse()
                        .map_err(|_| "--sim-shards needs an integer".to_string())?;
                    if n == 0 {
                        return Err("--sim-shards must be at least 1".to_string());
                    }
                    opts.sim_shards = Some(n);
                }
                "--sim-threads" => {
                    opts.sim_threads = Some(
                        value("--sim-threads")?
                            .parse()
                            .map_err(|_| "--sim-threads needs an integer".to_string())?,
                    );
                }
                "--reorder" => {
                    opts.reorder = value("--reorder")?.parse()?;
                }
                "--suite" => opts.suite_row = Some(value("--suite")?),
                "--server" => opts.server = value("--server")?,
                "--wait" => opts.wait = true,
                "--stats" => opts.stats = true,
                "--quiet" => opts.quiet = true,
                "--public" => opts.public_only = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown option '{other}'"));
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    fn apply(&self, mut spec: JobSpec) -> JobSpec {
        spec.objective = self.objective;
        spec.pi = domino_engine::PiSpec::Uniform(self.p);
        spec.timing_fraction = self.timed;
        spec.mp_and_penalty = self.and_penalty;
        if let Some(cycles) = self.sim_cycles {
            spec.sim.cycles = cycles;
        }
        if let Some(shards) = self.sim_shards {
            spec.sim.shards = shards;
        }
        if let Some(threads) = self.sim_threads {
            spec.sim.threads = threads;
        }
        spec.flow.probability.reorder = self.reorder;
        spec
    }

    fn cache(&self) -> Result<Option<Arc<ResultCache>>, String> {
        match &self.cache_dir {
            Some(dir) => ResultCache::on_disk(dir)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| e.to_string()),
            None => Ok(None),
        }
    }

    fn snapshots(&self) -> Result<Option<Arc<SnapshotStore>>, String> {
        match &self.snapshot_dir {
            Some(dir) => SnapshotStore::on_disk(dir).map(|s| Some(Arc::new(s))),
            None => Ok(None),
        }
    }

    fn client(&self) -> ServeClient {
        ServeClient::builder(self.server.clone()).build()
    }

    /// The single circuit spec for `run`/`submit`: a BLIF path or a suite
    /// row, exactly one of them.
    fn single_spec(&self, command: &str) -> Result<JobSpec, String> {
        match (&self.suite_row, self.positional.as_slice()) {
            (Some(row), []) => Ok(self.apply(JobSpec::suite(row))),
            (None, [path]) => Ok(blif_job(path, self)),
            _ => Err(format!(
                "{command} needs exactly one BLIF file or --suite <row>"
            )),
        }
    }
}

fn stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn blif_job(path: &str, opts: &Options) -> JobSpec {
    opts.apply(JobSpec {
        name: stem(path),
        source: CircuitSource::BlifPath(path.to_string()),
        ..JobSpec::suite("unused")
    })
}

fn run_jobs(specs: Vec<JobSpec>, opts: &Options) -> Result<ExitCode, String> {
    let total = specs.len();
    let mut jobs = Vec::with_capacity(total);
    for spec in specs {
        jobs.push(spec.resolve().map_err(|e| e.to_string())?);
    }
    let cache = opts.cache()?;
    let snapshots = opts.snapshots()?;
    let engine = FlowEngine::new(EngineConfig {
        threads: opts.threads,
        cache: cache.clone(),
        snapshots: snapshots.clone(),
    });
    let quiet = opts.quiet;
    let progress = move |event: ProgressEvent| {
        if quiet {
            return;
        }
        match event {
            ProgressEvent::Started { index, name } => {
                eprintln!("[{}/{}] {name} ...", index + 1, total);
            }
            ProgressEvent::Finished {
                index,
                name,
                cached,
                elapsed_ms,
            } => {
                let how = if cached { "cache hit" } else { "computed" };
                eprintln!(
                    "[{}/{}] {name} done ({how}, {elapsed_ms} ms)",
                    index + 1,
                    total
                );
            }
            ProgressEvent::Failed { index, name, error } => {
                eprintln!("[{}/{}] {name} FAILED: {error}", index + 1, total);
            }
            ProgressEvent::Cancelled { index } => {
                eprintln!("[{}/{}] cancelled", index + 1, total);
            }
        }
    };
    let results = engine.run_batch_with(&jobs, progress, &CancelToken::new());

    // --quiet silences *progress* (stderr), never the results: the table,
    // stats and cache summary always print, as documented in the usage.
    print!("{}", report::format_outcomes(&results));
    if opts.stats {
        print!("{}", report::format_kernel_stats(&results));
    }
    if let Some(cache) = &cache {
        let stats = cache.stats();
        println!(
            "cache: {} hits ({} memory, {} disk), {} misses, {} entries on disk",
            stats.hits(),
            stats.memory_hits,
            stats.disk_hits,
            stats.misses,
            cache.disk_len(),
        );
    }
    if let Some(store) = &snapshots {
        let stats = store.stats();
        println!(
            "snapshots: {} hits, {} misses, {} stores, {} kernel builds, {} entries on disk",
            stats.hits,
            stats.misses,
            stats.stores,
            stats.kernel_builds,
            store.disk_len(),
        );
    }
    if let Some(path) = &opts.jsonl {
        let jsonl = report::to_jsonl(&results);
        if path == "-" {
            print!("{jsonl}");
        } else {
            std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    let all_ok = results
        .iter()
        .all(|r| matches!(r, JobResult::Completed { .. }));
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_suite(opts: &Options) -> Result<ExitCode, String> {
    let specs = suite_names(opts.public_only)
        .into_iter()
        .map(|name| opts.apply(JobSpec::suite(name)))
        .collect();
    run_jobs(specs, opts)
}

/// Suite row names, optionally restricted to the public-domain subset
/// (owned by `domino-workloads`, so the CLI never drifts from the library).
fn suite_names(public_only: bool) -> Vec<&'static str> {
    if public_only {
        domino_workloads::public_row_names()
    } else {
        domino_workloads::table_row_names()
    }
}

fn cmd_cache(args: &[String]) -> Result<ExitCode, String> {
    let sub = args.first().map(String::as_str);
    let opts = Options::parse(args.get(1..).unwrap_or(&[]))?;
    if sub == Some("snapshots") {
        // The snapshot store has its own directory flag: it is a
        // different artifact class (kernels, not outcomes) and is never
        // the same directory as the result cache.
        let dir = opts
            .snapshot_dir
            .ok_or_else(|| "cache snapshots needs --snapshot-dir <dir>".to_string())?;
        let store = SnapshotStore::on_disk(&dir)?;
        println!("snapshot directory: {dir}");
        println!("entries on disk: {}", store.disk_len());
        println!("bytes on disk: {}", store.disk_bytes());
        return Ok(ExitCode::SUCCESS);
    }
    let dir = opts
        .cache_dir
        .ok_or_else(|| "cache commands need --cache <dir>".to_string())?;
    let cache = ResultCache::on_disk(&dir).map_err(|e| e.to_string())?;
    match sub {
        Some("stats") => {
            println!("cache directory: {dir}");
            println!("entries on disk: {}", cache.disk_len());
            Ok(ExitCode::SUCCESS)
        }
        Some("clear") => {
            let before = cache.disk_len();
            cache.clear().map_err(|e| e.to_string())?;
            println!("removed {before} entries from {dir}");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("cache subcommand must be 'stats', 'clear' or 'snapshots'".to_string()),
    }
}

// ---- server-side commands ----

/// Renders a client error and picks the documented exit code: 3 for an
/// unreachable server, 1 for everything the server itself rejected.
fn client_failure(context: &str, error: &ClientError) -> ExitCode {
    eprintln!("dominoc: {context}: {error}");
    if let ClientError::Api {
        retry_after: Some(seconds),
        ..
    } = error
    {
        eprintln!("dominoc: server suggests retrying after {seconds}s");
    }
    match error {
        ClientError::Unreachable(_) => ExitCode::from(EXIT_UNREACHABLE),
        _ => ExitCode::FAILURE,
    }
}

fn parse_job_id(opts: &Options, command: &str) -> Result<u64, String> {
    match opts.positional.as_slice() {
        [id] => id
            .parse()
            .map_err(|_| format!("{command} needs a numeric job id, got '{id}'")),
        _ => Err(format!("{command} needs exactly one job id")),
    }
}

fn cmd_submit(opts: &Options) -> Result<ExitCode, String> {
    let mut spec = opts.single_spec("submit")?;
    // Inline the circuit text: the server need not share our filesystem.
    // Content addressing makes this equivalent to a local path run.
    if let CircuitSource::BlifPath(path) = &spec.source {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
        spec.source = CircuitSource::BlifInline(text);
    }
    if opts.wait {
        // Synchronous mode: one round trip, outcome JSON on stdout.
        return match opts.client().run_sync(&spec) {
            Ok(text) => {
                println!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => Ok(client_failure("submit", &e)),
        };
    }
    match opts.client().submit(&spec) {
        Ok(reply) => {
            eprintln!(
                "submitted job {} ({}, {}), queue depth {}",
                reply.id, reply.name, reply.status, reply.queue_depth
            );
            // Machine-parseable: exactly the id on stdout.
            println!("{}", reply.id);
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("submit", &e)),
    }
}

fn cmd_status(opts: &Options) -> Result<ExitCode, String> {
    let id = parse_job_id(opts, "status")?;
    match opts.client().status(id, opts.wait) {
        Ok(reply) => {
            println!("{}", reply.to_json().serialize());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("status", &e)),
    }
}

fn cmd_watch(opts: &Options) -> Result<ExitCode, String> {
    let id = parse_job_id(opts, "watch")?;
    match opts.client().events(id, |event| {
        println!("{}", event.to_json().serialize());
    }) {
        Ok(events) => Ok(match events.last().map(|e| e.kind) {
            Some(domino_serve::EventKind::Finished) => ExitCode::SUCCESS,
            // Failed, cancelled, or the stream ended without a terminal
            // event (server drain): not a success.
            _ => ExitCode::FAILURE,
        }),
        Err(e) => Ok(client_failure("watch", &e)),
    }
}

fn cmd_result(opts: &Options) -> Result<ExitCode, String> {
    let id = parse_job_id(opts, "result")?;
    match opts.client().result(id, opts.wait) {
        Ok(text) => {
            // One outcome document per line — the same framing as
            // `run --jsonl`, so the bytes diff clean against a local run.
            println!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("result", &e)),
    }
}

fn cmd_cancel(opts: &Options) -> Result<ExitCode, String> {
    let id = parse_job_id(opts, "cancel")?;
    match opts.client().cancel(id) {
        Ok(reply) => {
            println!("{}", reply.to_json().serialize());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("cancel", &e)),
    }
}

fn cmd_metrics(opts: &Options) -> Result<ExitCode, String> {
    match opts.client().metrics() {
        Ok(reply) => {
            println!("{}", reply.to_json().serialize());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("metrics", &e)),
    }
}

fn cmd_shutdown(opts: &Options) -> Result<ExitCode, String> {
    match opts.client().shutdown() {
        Ok(()) => {
            eprintln!("dominoc: server at {} is draining", opts.server);
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(client_failure("shutdown", &e)),
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use domino_serve::{ServeConfig, Server};
    // Same flags, same validation as the dominod binary — one parser.
    let config = ServeConfig::parse_args(args)?;
    let mut server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("dominod listening on {}", server.addr());
    server.wait();
    eprintln!("dominoc: server drained, exiting");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let run = || -> Result<ExitCode, String> {
        match command {
            "run" => {
                let opts = Options::parse(rest)?;
                let spec = opts.single_spec("run")?;
                run_jobs(vec![spec], &opts)
            }
            "batch" => {
                let opts = Options::parse(rest)?;
                if opts.positional.is_empty() {
                    return Err("batch needs at least one BLIF file".to_string());
                }
                let specs = opts.positional.iter().map(|p| blif_job(p, &opts)).collect();
                run_jobs(specs, &opts)
            }
            "suite" => {
                let opts = Options::parse(rest)?;
                if !opts.positional.is_empty() {
                    return Err("suite takes no positional arguments".to_string());
                }
                cmd_suite(&opts)
            }
            "cache" => cmd_cache(rest),
            "serve" => cmd_serve(rest),
            "submit" => cmd_submit(&Options::parse(rest)?),
            "status" => cmd_status(&Options::parse(rest)?),
            "watch" => cmd_watch(&Options::parse(rest)?),
            "result" => cmd_result(&Options::parse(rest)?),
            "cancel" => cmd_cancel(&Options::parse(rest)?),
            "metrics" => cmd_metrics(&Options::parse(rest)?),
            "shutdown" => cmd_shutdown(&Options::parse(rest)?),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unknown command '{other}'")),
        }
    };
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("dominoc: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
