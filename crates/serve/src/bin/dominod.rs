//! `dominod` — the phase-assignment server.
//!
//! ```text
//! dominod [--addr 127.0.0.1:7171] [--workers n] [--queue n] [--cache dir]
//! ```
//!
//! Binds, prints `dominod listening on <addr>` (port 0 reports the
//! ephemeral port actually bound — scripts parse this line), then serves
//! until `POST /shutdown` (`dominoc shutdown`), SIGTERM or SIGINT asks
//! it to drain.
//!
//! Exit status: 0 after a graceful drain, 2 on usage or bind errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use domino_serve::{ServeConfig, Server};

fn usage() -> String {
    format!(
        "usage: dominod [options]\n\
         \n\
         options:\n\
         {}\n\
         \n\
         stop it with: dominoc shutdown --server <addr>, SIGTERM or SIGINT",
        ServeConfig::arg_table().options_help()
    )
}

/// Arranges for SIGTERM/SIGINT to request the same graceful drain as
/// `POST /shutdown`. Failures are reported, not fatal — a platform
/// without signal support still serves.
fn wire_signals(server: &Server) {
    let flag = Arc::new(AtomicBool::new(false));
    for signal in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        if let Err(e) = signal_hook::flag::register(signal, Arc::clone(&flag)) {
            eprintln!("dominod: signal {signal} not wired: {e}");
        }
    }
    let handle = server.shutdown_handle();
    std::thread::Builder::new()
        .name("dominod-signals".into())
        .spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                eprintln!("dominod: signal received, draining");
                handle.request_shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

fn run(args: &[String]) -> Result<(), String> {
    if args
        .iter()
        .any(|a| matches!(a.as_str(), "help" | "--help" | "-h"))
    {
        println!("{}", usage());
        return Ok(());
    }
    let mut args = args.to_vec();
    domino_failpoint::take_cli_args(&mut args)?;
    if let Some((spec, seed)) = domino_failpoint::active_spec() {
        // The reproducibility header: a chaos failure is rerunnable from
        // this one log line.
        eprintln!("dominod: failpoints active: {spec} (seed {seed})");
    }
    let config = ServeConfig::parse_args(&args)?;
    let mut server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    // Scripts (CI smoke, serve_bench) parse this exact line for the port.
    println!("dominod listening on {}", server.addr());
    wire_signals(&server);
    server.wait();
    let m = server.metrics();
    eprintln!(
        "dominod: drained and exiting ({} completed, {} failed, {} cancelled, {} rejected)",
        m.completed, m.failed, m.cancelled, m.rejected
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dominod: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
