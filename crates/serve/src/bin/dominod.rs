//! `dominod` — the phase-assignment server.
//!
//! ```text
//! dominod [--addr 127.0.0.1:7171] [--workers n] [--queue n] [--cache dir]
//! ```
//!
//! Binds, prints `dominod listening on <addr>` (port 0 reports the
//! ephemeral port actually bound — scripts parse this line), then serves
//! until `POST /shutdown` (`dominoc shutdown`), SIGTERM or SIGINT asks
//! it to drain.
//!
//! Exit status: 0 after a graceful drain, 2 on usage or bind errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use domino_serve::{ServeConfig, Server, DEFAULT_PORT};

fn usage() -> String {
    format!(
        "usage: dominod [options]\n\
         \n\
         options:\n\
         \x20 --addr <host:port>        bind address [127.0.0.1:{DEFAULT_PORT}]; port 0 = ephemeral\n\
         \x20 --workers <n>             worker threads, 0 = all CPUs [0]\n\
         \x20 --queue <n>               admission queue capacity [64]\n\
         \x20 --cache <dir>             on-disk result cache (shared with dominoc)\n\
         \x20 --cache-mem-entries <n>   in-memory cache entry budget, 0 = unbounded [0]\n\
         \x20 --cache-disk-bytes <n>    on-disk cache byte budget, 0 = unbounded [0]\n\
         \x20 --idle-ms <n>             per-connection idle timeout [10000]\n\
         \x20 --failpoints <spec>       fault-injection schedule (site=mode,...; also via\n\
         \x20                           DOMINO_FAILPOINTS), modes off|once|every(n)|after(n)\n\
         \x20 --failpoint-seed <n>      failpoint schedule seed (also DOMINO_FAILPOINT_SEED) [0]\n\
         \n\
         stop it with: dominoc shutdown --server <addr>, SIGTERM or SIGINT"
    )
}

/// Arranges for SIGTERM/SIGINT to request the same graceful drain as
/// `POST /shutdown`. Failures are reported, not fatal — a platform
/// without signal support still serves.
fn wire_signals(server: &Server) {
    let flag = Arc::new(AtomicBool::new(false));
    for signal in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        if let Err(e) = signal_hook::flag::register(signal, Arc::clone(&flag)) {
            eprintln!("dominod: signal {signal} not wired: {e}");
        }
    }
    let handle = server.shutdown_handle();
    std::thread::Builder::new()
        .name("dominod-signals".into())
        .spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                eprintln!("dominod: signal received, draining");
                handle.request_shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

fn run(args: &[String]) -> Result<(), String> {
    if args
        .iter()
        .any(|a| matches!(a.as_str(), "help" | "--help" | "-h"))
    {
        println!("{}", usage());
        return Ok(());
    }
    let mut args = args.to_vec();
    domino_failpoint::take_cli_args(&mut args)?;
    if let Some((spec, seed)) = domino_failpoint::active_spec() {
        // The reproducibility header: a chaos failure is rerunnable from
        // this one log line.
        eprintln!("dominod: failpoints active: {spec} (seed {seed})");
    }
    let config = ServeConfig::parse_args(&args)?;
    let mut server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    // Scripts (CI smoke, serve_bench) parse this exact line for the port.
    println!("dominod listening on {}", server.addr());
    wire_signals(&server);
    server.wait();
    let m = server.metrics();
    eprintln!(
        "dominod: drained and exiting ({} completed, {} failed, {} cancelled, {} rejected)",
        m.completed, m.failed, m.cancelled, m.rejected
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dominod: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
