//! The job registry: admission queue, lifecycle state, event logs and the
//! stage-timing counters behind `GET /metrics`.
//!
//! One mutex guards the whole registry (job map + FIFO queue + counters)
//! and one condvar broadcasts every state change. That is deliberately
//! simple: the service is built for *flow-bound* traffic — jobs cost
//! milliseconds to run and microseconds to book-keep — so a single lock
//! is nowhere near the bottleneck, and it makes the invariants easy to
//! state:
//!
//! * a job id is in `queue` iff its record's status is [`JobStatus::Queued`]
//!   (cancelled-while-queued ids are skipped lazily at claim time);
//! * every job reaches exactly one terminal status, appends exactly one
//!   terminal [`EventRecord`], and its event `seq` numbers are dense from
//!   0 (`queued`);
//! * admission never blocks: a full queue is an immediate
//!   [`AdmitError::Full`] (the HTTP layer turns it into `429` +
//!   `Retry-After`), so accepted jobs are never silently dropped —
//!   rejection is always explicit.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use domino_engine::{CancelToken, FlowJob};

use crate::protocol::{EventKind, EventRecord, JobStatus, MetricsReply, StatusReply, SubmitReply};

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The admission queue is at capacity; retry later.
    Full {
        /// Current queue depth (== capacity).
        depth: u64,
    },
    /// The server is draining for shutdown and admits nothing new.
    Draining,
}

/// One job's full server-side state.
#[derive(Debug)]
struct JobRecord {
    id: u64,
    name: String,
    key: String,
    status: JobStatus,
    cached: Option<bool>,
    error: Option<String>,
    /// The engine's exact serialized outcome text — stored (and served)
    /// verbatim so the wire stays byte-identical to a local run.
    outcome_text: Option<String>,
    events: Vec<EventRecord>,
    cancel: CancelToken,
    queued_at: Instant,
    claimed_at: Option<Instant>,
    queue_ms: Option<u64>,
    exec_ms: Option<u64>,
    /// The runnable job, present only while queued (taken at claim time).
    job: Option<Box<FlowJob>>,
}

impl JobRecord {
    fn push_event(
        &mut self,
        kind: EventKind,
        cached: Option<bool>,
        elapsed_ms: Option<u64>,
        error: Option<String>,
    ) {
        let seq = self.events.len() as u64;
        self.events.push(EventRecord {
            seq,
            id: self.id,
            kind,
            name: self.name.clone(),
            cached,
            elapsed_ms,
            error,
        });
    }

    /// The status reply *without* its parsed outcome, paired with the raw
    /// outcome text. Parsing a multi-KB outcome document is too expensive
    /// for the registry lock — which also serializes submit/claim/finish —
    /// so callers attach it via [`attach_outcome`] after unlocking.
    fn status_seed(&self) -> (StatusReply, Option<String>) {
        (
            StatusReply {
                id: self.id,
                name: self.name.clone(),
                key: self.key.clone(),
                status: self.status,
                cached: self.cached,
                queue_ms: self.queue_ms,
                exec_ms: self.exec_ms,
                error: self.error.clone(),
                outcome: None,
            },
            self.outcome_text.clone(),
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    warm: u64,
    queue_wait_ms: u64,
    exec_ms: u64,
}

/// Terminal records kept for `GET /jobs/:id` queries before the oldest
/// are evicted. Bounds registry memory on a long-lived server: clients
/// are expected to fetch results promptly (or use `?wait=1` / the sync
/// submit path); a result not fetched within this many later completions
/// is gone (`404`). Counters are unaffected by eviction.
pub const RETAINED_TERMINAL_JOBS: usize = 4096;

#[derive(Debug)]
struct Inner {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    /// Terminal job ids in completion order, oldest first — the eviction
    /// queue that keeps `jobs` bounded.
    retired: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    counters: Counters,
}

impl Inner {
    /// Marks `id` terminal for retention purposes and evicts the oldest
    /// terminal records beyond the retention bound. Queued/running
    /// records are never evicted (they are bounded by the queue capacity
    /// and the worker count).
    fn retire(&mut self, id: u64, retained: usize) {
        self.retired.push_back(id);
        while self.retired.len() > retained {
            let oldest = self.retired.pop_front().expect("non-empty");
            self.jobs.remove(&oldest);
        }
    }
}

/// Shared admission queue + job table. All methods are `&self`; the
/// registry is meant to live in an `Arc` shared by the accept loop,
/// connection handlers and workers.
#[derive(Debug)]
pub struct Registry {
    capacity: usize,
    retained: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Registry {
    /// A registry whose admission queue holds at most `capacity` jobs,
    /// retaining up to [`RETAINED_TERMINAL_JOBS`] finished records.
    pub fn new(capacity: usize) -> Self {
        Registry::with_retention(capacity, RETAINED_TERMINAL_JOBS)
    }

    /// Like [`Registry::new`] with an explicit terminal-record retention
    /// bound (smallest useful value is 1).
    pub fn with_retention(capacity: usize, retained: usize) -> Self {
        Registry {
            capacity: capacity.max(1),
            retained: retained.max(1),
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                retired: VecDeque::new(),
                next_id: 1,
                draining: false,
                counters: Counters::default(),
            }),
            cond: Condvar::new(),
        }
    }

    /// The admission-queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry lock")
    }

    /// Admits a job into the FIFO queue.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Full`] when the queue is at capacity (explicit
    /// backpressure; the job is *not* enqueued), [`AdmitError::Draining`]
    /// once shutdown has begun.
    pub fn submit(&self, job: FlowJob) -> Result<SubmitReply, AdmitError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(AdmitError::Draining);
        }
        if domino_failpoint::should_fire("serve.registry.admit") {
            // Injected backpressure: indistinguishable from a genuinely
            // full queue, so the 429 + Retry-After path is exercised end
            // to end (client budgets, gateway relay-verbatim).
            inner.counters.rejected += 1;
            return Err(AdmitError::Full {
                depth: inner.queue.len() as u64,
            });
        }
        if inner.queue.len() >= self.capacity {
            inner.counters.rejected += 1;
            return Err(AdmitError::Full {
                depth: inner.queue.len() as u64,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut record = JobRecord {
            id,
            name: job.spec.name.clone(),
            key: job.cache_key().to_string(),
            status: JobStatus::Queued,
            cached: None,
            error: None,
            outcome_text: None,
            events: Vec::new(),
            cancel: CancelToken::new(),
            queued_at: Instant::now(),
            claimed_at: None,
            queue_ms: None,
            exec_ms: None,
            job: Some(Box::new(job)),
        };
        record.push_event(EventKind::Queued, None, None, None);
        let reply = SubmitReply {
            id,
            name: record.name.clone(),
            key: record.key.clone(),
            status: JobStatus::Queued,
            queue_depth: (inner.queue.len() + 1) as u64,
        };
        inner.jobs.insert(id, record);
        inner.queue.push_back(id);
        inner.counters.submitted += 1;
        self.cond.notify_all();
        Ok(reply)
    }

    /// Admits a job that the result cache already answered: the record is
    /// created in [`JobStatus::Completed`] with its full (zero-duration)
    /// event history and never touches the queue — warm traffic occupies
    /// no queue slot and no worker. `outcome_text` is the engine's exact
    /// serialized outcome.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Draining`] once shutdown has begun (a draining server
    /// answers nothing new, warm or not).
    pub fn admit_completed(
        &self,
        job: &FlowJob,
        outcome_text: String,
    ) -> Result<SubmitReply, AdmitError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(AdmitError::Draining);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut record = JobRecord {
            id,
            name: job.spec.name.clone(),
            key: job.cache_key().to_string(),
            status: JobStatus::Completed,
            cached: Some(true),
            error: None,
            outcome_text: Some(outcome_text),
            events: Vec::new(),
            cancel: CancelToken::new(),
            queued_at: Instant::now(),
            claimed_at: None,
            queue_ms: Some(0),
            exec_ms: Some(0),
            job: None,
        };
        record.push_event(EventKind::Queued, None, None, None);
        record.push_event(EventKind::Started, None, Some(0), None);
        record.push_event(EventKind::Finished, Some(true), Some(0), None);
        let reply = SubmitReply {
            id,
            name: record.name.clone(),
            key: record.key.clone(),
            status: JobStatus::Completed,
            queue_depth: inner.queue.len() as u64,
        };
        inner.jobs.insert(id, record);
        inner.counters.submitted += 1;
        inner.counters.completed += 1;
        inner.counters.warm += 1;
        inner.retire(id, self.retained);
        self.cond.notify_all();
        Ok(reply)
    }

    /// Blocks until a queued job is available and claims it, recording the
    /// `started` event. Returns `None` once the registry is draining and
    /// the queue is empty — the worker's signal to exit.
    pub fn claim(&self) -> Option<(u64, FlowJob, CancelToken)> {
        let mut inner = self.lock();
        loop {
            while let Some(id) = inner.queue.pop_front() {
                let record = inner.jobs.get_mut(&id).expect("queued job has a record");
                if record.status != JobStatus::Queued {
                    // Unreachable today (cancel removes queued ids eagerly)
                    // but cheap insurance against a future race.
                    continue;
                }
                let now = Instant::now();
                let queue_ms = now.duration_since(record.queued_at).as_millis() as u64;
                record.status = JobStatus::Running;
                record.claimed_at = Some(now);
                record.queue_ms = Some(queue_ms);
                record.push_event(EventKind::Started, None, Some(queue_ms), None);
                let job = *record.job.take().expect("queued job carries its FlowJob");
                let token = record.cancel.clone();
                inner.counters.queue_wait_ms += queue_ms;
                self.cond.notify_all();
                return Some((id, job, token));
            }
            if inner.draining {
                return None;
            }
            inner = self.cond.wait(inner).expect("registry lock");
        }
    }

    /// Records a successful completion. `outcome_text` is the engine's
    /// serialized outcome, stored verbatim.
    pub fn finish(&self, id: u64, outcome_text: String, cached: bool) {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id).expect("finishing a known job");
        let exec_ms = elapsed_ms(record.claimed_at);
        record.status = JobStatus::Completed;
        record.cached = Some(cached);
        record.exec_ms = Some(exec_ms);
        record.outcome_text = Some(outcome_text);
        record.push_event(EventKind::Finished, Some(cached), Some(exec_ms), None);
        inner.counters.completed += 1;
        if cached {
            inner.counters.warm += 1;
        }
        inner.counters.exec_ms += exec_ms;
        inner.retire(id, self.retained);
        self.cond.notify_all();
    }

    /// Records a flow failure.
    pub fn fail(&self, id: u64, error: String) {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id).expect("failing a known job");
        let exec_ms = elapsed_ms(record.claimed_at);
        record.status = JobStatus::Failed;
        record.exec_ms = Some(exec_ms);
        record.error = Some(error.clone());
        record.push_event(EventKind::Failed, None, Some(exec_ms), Some(error));
        inner.counters.failed += 1;
        inner.counters.exec_ms += exec_ms;
        inner.retire(id, self.retained);
        self.cond.notify_all();
    }

    /// Marks a claimed job cancelled (the engine observed the token before
    /// running it).
    pub fn mark_cancelled(&self, id: u64) {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id).expect("cancelling a known job");
        if record.status.is_terminal() {
            return;
        }
        record.status = JobStatus::Cancelled;
        record.exec_ms = Some(elapsed_ms(record.claimed_at));
        record.push_event(EventKind::Cancelled, None, None, None);
        inner.counters.cancelled += 1;
        inner.retire(id, self.retained);
        self.cond.notify_all();
    }

    /// Requests cancellation of a job (`DELETE /jobs/:id`).
    ///
    /// Queued jobs transition to [`JobStatus::Cancelled`] immediately and
    /// never run. For running jobs cancellation is cooperative: the token
    /// is set and the engine observes it at the flow's stage boundaries
    /// (probabilities → search → synthesis → simulation), so the job stops
    /// at the next boundary rather than running to completion. The status
    /// returned *here* still says `Running`; it flips to `Cancelled` once
    /// the worker reports back.
    pub fn cancel(&self, id: u64) -> Option<StatusReply> {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id)?;
        record.cancel.cancel();
        if record.status == JobStatus::Queued {
            record.status = JobStatus::Cancelled;
            record.queue_ms = Some(record.queued_at.elapsed().as_millis() as u64);
            record.job = None;
            // elapsed_ms is documented as time-since-claim; a job cancelled
            // while queued was never claimed, so the event carries None
            // (the queue wait lives in the status document's queue_ms).
            record.push_event(EventKind::Cancelled, None, None, None);
            // Eager removal keeps the admission-capacity check accurate: a
            // cancelled job must free its queue slot immediately.
            inner.queue.retain(|&q| q != id);
            inner.counters.cancelled += 1;
            inner.retire(id, self.retained);
            self.cond.notify_all();
        }
        // The record may have been the retention victim of its own retire
        // call only if `retained == 0`, which the constructor forbids.
        let seed = inner.jobs[&id].status_seed();
        drop(inner);
        Some(attach_outcome(seed))
    }

    /// Current status of a job, or `None` for unknown ids.
    pub fn status(&self, id: u64) -> Option<StatusReply> {
        let seed = self.lock().jobs.get(&id).map(JobRecord::status_seed);
        seed.map(attach_outcome)
    }

    /// The stored outcome text (exact engine bytes) with the job's status;
    /// `None` for unknown ids.
    pub fn outcome_text(&self, id: u64) -> Option<(JobStatus, Option<String>, Option<String>)> {
        let inner = self.lock();
        let record = inner.jobs.get(&id)?;
        Some((
            record.status,
            record.outcome_text.clone(),
            record.error.clone(),
        ))
    }

    /// Blocks until job `id` reaches a terminal status and returns its
    /// status reply, or `None` for unknown (or retention-evicted) ids.
    /// Bounded: every admitted job terminates — the drain runs the whole
    /// queue — so this never waits on an abandoned job.
    pub fn wait_terminal(&self, id: u64) -> Option<StatusReply> {
        let seed = {
            let mut inner = self.lock();
            loop {
                let record = inner.jobs.get(&id)?;
                if record.status.is_terminal() {
                    break record.status_seed();
                }
                let (guard, _) = self
                    .cond
                    .wait_timeout(inner, std::time::Duration::from_millis(50))
                    .expect("registry lock");
                inner = guard;
            }
        };
        Some(attach_outcome(seed))
    }

    /// Like [`Registry::wait_terminal`] but without building the status
    /// document — for wait paths that respond with the stored outcome
    /// bytes and would discard the reply (building it parses the whole
    /// outcome JSON under the registry lock). Returns `false` for unknown
    /// ids.
    pub fn wait_done(&self, id: u64) -> bool {
        let mut inner = self.lock();
        loop {
            let Some(record) = inner.jobs.get(&id) else {
                return false;
            };
            if record.status.is_terminal() {
                return true;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(inner, std::time::Duration::from_millis(50))
                .expect("registry lock");
            inner = guard;
        }
    }

    /// Events of job `id` with sequence number `>= from_seq`, plus whether
    /// a terminal event has been recorded. `None` for unknown ids.
    pub fn events_from(&self, id: u64, from_seq: u64) -> Option<(Vec<EventRecord>, bool)> {
        let inner = self.lock();
        let record = inner.jobs.get(&id)?;
        let fresh: Vec<EventRecord> = record
            .events
            .iter()
            .filter(|e| e.seq >= from_seq)
            .cloned()
            .collect();
        let terminal = record.events.last().is_some_and(|e| e.kind.is_terminal());
        Some((fresh, terminal))
    }

    /// Blocks until job `id` has events with `seq >= from_seq` or a
    /// terminal event exists. Same return shape as
    /// [`Registry::events_from`]; bounded for the same reason as
    /// [`Registry::wait_terminal`].
    pub fn wait_events(&self, id: u64, from_seq: u64) -> Option<(Vec<EventRecord>, bool)> {
        loop {
            let (fresh, terminal) = self.events_from(id, from_seq)?;
            if !fresh.is_empty() || terminal {
                return Some((fresh, terminal));
            }
            let inner = self.lock();
            let _ = self
                .cond
                .wait_timeout(inner, std::time::Duration::from_millis(50))
                .expect("registry lock");
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> u64 {
        self.lock().queue.len() as u64
    }

    /// Begins draining: no new admissions, workers finish the queue and
    /// exit, every waiter wakes.
    pub fn drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        self.cond.notify_all();
    }

    /// A metrics snapshot. `workers`/`uptime_ms`/`cache` are the caller's
    /// (the registry does not own them).
    pub fn metrics(
        &self,
        workers: u64,
        uptime_ms: u64,
        cache: Option<crate::protocol::CacheCounters>,
    ) -> MetricsReply {
        let inner = self.lock();
        let queue_depth = inner.queue.len() as u64;
        MetricsReply {
            queue_depth,
            queue_capacity: self.capacity as u64,
            workers,
            uptime_ms,
            submitted: inner.counters.submitted,
            rejected: inner.counters.rejected,
            completed: inner.counters.completed,
            failed: inner.counters.failed,
            cancelled: inner.counters.cancelled,
            warm: inner.counters.warm,
            queue_wait_ms: inner.counters.queue_wait_ms,
            exec_ms: inner.counters.exec_ms,
            cache,
            // The registry owns neither the snapshot store nor the
            // connection layer; the server overlays both before replying.
            snapshot: None,
            reactor: None,
            failpoints: domino_failpoint::snapshot()
                .into_iter()
                .map(|s| crate::protocol::FailpointCounter {
                    site: s.site,
                    mode: s.mode,
                    hits: s.hits,
                    fires: s.fires,
                })
                .collect(),
        }
    }
}

/// Completes a [`JobRecord::status_seed`] pair by parsing the outcome
/// text — outside the registry lock.
fn attach_outcome((mut reply, text): (StatusReply, Option<String>)) -> StatusReply {
    reply.outcome = text
        .as_deref()
        .and_then(|t| domino_engine::json::parse(t).ok());
    reply
}

fn elapsed_ms(since: Option<Instant>) -> u64 {
    since.map(|t| t.elapsed().as_millis() as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_engine::JobSpec;

    fn job(name: &str) -> FlowJob {
        let mut spec = JobSpec::suite("frg1");
        spec.name = name.to_string();
        spec.resolve().expect("suite resolves")
    }

    #[test]
    fn fifo_order_and_event_sequence() {
        let reg = Registry::new(8);
        let a = reg.submit(job("a")).unwrap();
        let b = reg.submit(job("b")).unwrap();
        assert_eq!(a.queue_depth, 1);
        assert_eq!(b.queue_depth, 2);

        let (id_a, _, _) = reg.claim().unwrap();
        assert_eq!(id_a, a.id);
        reg.finish(id_a, "{}".to_string(), false);
        let (events, terminal) = reg.events_from(id_a, 0).unwrap();
        assert!(terminal);
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Queued, EventKind::Started, EventKind::Finished]
        );
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );

        let (id_b, _, _) = reg.claim().unwrap();
        assert_eq!(id_b, b.id);
    }

    #[test]
    fn full_queue_rejects_explicitly() {
        let reg = Registry::new(2);
        reg.submit(job("a")).unwrap();
        reg.submit(job("b")).unwrap();
        let err = reg.submit(job("c")).unwrap_err();
        assert_eq!(err, AdmitError::Full { depth: 2 });
        // The rejection is counted, and nothing was enqueued.
        let m = reg.metrics(1, 0, None);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.submitted, 2);
        assert_eq!(m.queue_depth, 2);
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let reg = Registry::new(8);
        let a = reg.submit(job("a")).unwrap();
        let b = reg.submit(job("b")).unwrap();
        let reply = reg.cancel(a.id).unwrap();
        assert_eq!(reply.status, JobStatus::Cancelled);
        // The claim skips the cancelled id and hands out b.
        let (id, _, _) = reg.claim().unwrap();
        assert_eq!(id, b.id);
        let (events, terminal) = reg.events_from(a.id, 0).unwrap();
        assert!(terminal);
        assert_eq!(events.last().unwrap().kind, EventKind::Cancelled);
    }

    #[test]
    fn drain_wakes_idle_workers() {
        let reg = std::sync::Arc::new(Registry::new(4));
        let worker = {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || reg.claim())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        reg.drain();
        assert!(worker.join().unwrap().is_none());
        assert_eq!(reg.submit(job("late")).unwrap_err(), AdmitError::Draining);
    }

    #[test]
    fn terminal_records_are_evicted_beyond_the_retention_bound() {
        let reg = Registry::with_retention(8, 2);
        let ids: Vec<u64> = (0..3)
            .map(|i| reg.submit(job(&format!("j{i}"))).unwrap().id)
            .collect();
        for _ in 0..3 {
            let (id, _, _) = reg.claim().unwrap();
            reg.finish(id, "{}".to_string(), false);
        }
        // Only the 2 most recent terminal records survive; the oldest is
        // gone (404 at the HTTP layer) but its counters remain.
        assert!(reg.status(ids[0]).is_none(), "oldest evicted");
        assert!(reg.status(ids[1]).is_some());
        assert!(reg.status(ids[2]).is_some());
        assert_eq!(reg.metrics(1, 0, None).completed, 3);
    }

    #[test]
    fn wait_terminal_observes_completion() {
        let reg = std::sync::Arc::new(Registry::new(4));
        let a = reg.submit(job("a")).unwrap();
        let waiter = {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || reg.wait_terminal(a.id))
        };
        let (id, _, _) = reg.claim().unwrap();
        reg.finish(id, "{\"name\":\"a\"}".to_string(), true);
        let reply = waiter.join().unwrap().unwrap();
        assert_eq!(reply.status, JobStatus::Completed);
        assert_eq!(reply.cached, Some(true));
        assert!(reply.outcome.is_some());
    }
}
