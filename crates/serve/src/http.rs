//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The build environment has no registry access, so — following the
//! `crates/compat` precedent — the service carries its own wire layer
//! instead of hyper/axum. It implements exactly what `dominod`, the
//! `dominogw` gateway and their clients need and nothing more:
//!
//! * request parsing: request line, headers, `Content-Length` bodies
//!   (bounded by [`MAX_BODY_BYTES`]), query-string splitting;
//! * response writing: fixed-length bodies with negotiated
//!   `Connection: keep-alive` / `close` semantics, and
//!   `Transfer-Encoding: chunked` streaming for the `/jobs/:id/events`
//!   endpoint (chunked responses always close);
//! * response reading for the client side, including a streaming chunk
//!   decoder that yields line-delimited event records as they arrive.
//!
//! # Keep-alive and pipelining
//!
//! [`HttpConnection`] wraps one TCP stream with a persistent read buffer,
//! so a connection carries many requests back to back. Clients may
//! pipeline: requests already buffered are parsed without touching the
//! socket, and responses are written strictly in request order (the
//! server handles one request at a time per connection, so the in-flight
//! pipeline depth is bounded by the socket and read buffers — a peer can
//! never force the server to hold more than one parsed request in
//! memory). [`serve_connection`] is the server-side state machine:
//!
//! ```text
//!          ┌────────────── idle (read timeout = idle_timeout) ─────────┐
//!          ▼                                                           │
//!   next_request ──▶ parsed ──▶ handler writes response ──▶ keep-alive?┘
//!          │
//!          ├─ clean EOF / idle timeout ─▶ close
//!          ├─ malformed / stalled mid-request ─▶ 400 + close
//!          └─ request #max_requests, Connection: close, or a
//!             streaming handler ─▶ final response carries close
//! ```
//!
//! No TLS, no compression, no `Expect: 100-continue`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on accepted request/response bodies (16 MiB). Inline BLIF
/// sources for the suite circuits are a few hundred KiB at most; anything
/// larger is a malformed or hostile request and is rejected before it can
/// balloon server memory.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on any single protocol line (request/status line, one
/// header, a chunk-size line). Like the body bound, this is enforced
/// *while reading*: a peer streaming an endless newline-free line is cut
/// off here, not at OOM.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Upper bound on the number of headers per message.
pub const MAX_HEADERS: usize = 128;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
/// Returns `Ok(None)` on a clean EOF before any byte.
fn read_line_bounded(reader: &mut impl BufRead, what: &str) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take((MAX_LINE_BYTES + 1) as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(bad(&format!("{what} line too long")));
    }
    Ok(Some(line))
}

/// `true` for the error kinds a read timeout surfaces as (`WouldBlock` on
/// unix, `TimedOut` on windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, ...), uppercased.
    pub method: String,
    /// Decoded path without the query string (`/jobs/42`).
    pub path: String,
    /// Query parameters in order of appearance (`?wait=1`).
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the query string asks for long-poll/blocking behaviour
    /// (`?wait=1` or `?wait=true`).
    pub fn wants_wait(&self) -> bool {
        matches!(self.query_param("wait"), Some("1") | Some("true"))
    }

    /// First value of the (case-insensitively matched) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the request asks the server to close after responding.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The original request target (`path?query`), reassembled — what a
    /// proxy forwards verbatim.
    pub fn target(&self) -> String {
        if self.query.is_empty() {
            return self.path.clone();
        }
        let qs: Vec<String> = self
            .query
            .iter()
            .map(|(k, v)| {
                if v.is_empty() {
                    k.clone()
                } else {
                    format!("{k}={v}")
                }
            })
            .collect();
        format!("{}?{}", self.path, qs.join("&"))
    }
}

/// What [`HttpConnection::next_request`] found on the wire.
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The idle deadline passed with no request byte received — close
    /// without error (distinct from a peer stalling *mid*-request, which
    /// is an [`io::Error`]).
    TimedOut,
}

/// One HTTP/1.1 connection (either side) with a persistent read buffer —
/// the carrier for keep-alive and pipelining. Bytes of a follow-up
/// request that arrive early stay in the buffer and are parsed by the
/// next [`HttpConnection::next_request`] call instead of being lost.
#[derive(Debug)]
pub struct HttpConnection {
    reader: BufReader<TcpStream>,
}

impl HttpConnection {
    /// Wraps a connected stream.
    ///
    /// Disables Nagle's algorithm: every message here is written as one
    /// complete buffer, so coalescing only adds delayed-ACK stalls
    /// (~40ms per message) to keep-alive request/response cadence.
    pub fn new(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        HttpConnection {
            reader: BufReader::new(stream),
        }
    }

    /// The underlying stream (for timeouts and peer addresses).
    pub fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// Mutable access to the underlying stream (writes bypass the read
    /// buffer, which is exactly right for HTTP).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// `true` when a pipelined peer already delivered bytes of the next
    /// message: parsing can proceed without waiting on the socket.
    pub fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }

    /// Reads the next request off the connection.
    ///
    /// A read timeout that fires before *any* byte of the request line is
    /// [`NextRequest::TimedOut`] (the idle-deadline close); one that fires
    /// mid-request is an error, because the stream is no longer at a
    /// message boundary and cannot be resynchronized.
    ///
    /// # Errors
    ///
    /// [`io::Error`] with `InvalidData` for malformed requests (bad
    /// request line, non-numeric or oversized `Content-Length`, truncated
    /// body), or the underlying I/O error.
    pub fn next_request(&mut self) -> io::Result<NextRequest> {
        if domino_failpoint::should_fire("serve.http.read") {
            return Err(domino_failpoint::injected_io_error("serve.http.read"));
        }
        let mut line = String::new();
        let n = match self
            .reader
            .by_ref()
            .take((MAX_LINE_BYTES + 1) as u64)
            .read_line(&mut line)
        {
            Ok(n) => n,
            Err(e) if is_timeout(&e) && line.is_empty() => return Ok(NextRequest::TimedOut),
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(NextRequest::Closed);
        }
        if n > MAX_LINE_BYTES && !line.ends_with('\n') {
            return Err(bad("request line too long"));
        }
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Err(bad("malformed request line"));
        };
        let method = method.to_ascii_uppercase();
        let (path, query) = split_target(target);

        let parsed = read_headers(&mut self.reader)?;

        let mut body = vec![0u8; parsed.content_length.unwrap_or(0)];
        self.reader.read_exact(&mut body)?;
        Ok(NextRequest::Request(Request {
            method,
            path,
            query,
            headers: parsed.headers,
            body,
        }))
    }

    /// Writes a complete fixed-length response and flushes it, with the
    /// negotiated `Connection` header.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying writes.
    pub fn write_response(
        &mut self,
        status: u16,
        extra_headers: &[(&str, &str)],
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        if domino_failpoint::should_fire("serve.http.write") {
            return Err(domino_failpoint::injected_io_error("serve.http.write"));
        }
        let stream = self.reader.get_mut();
        // One write per message: a head-then-body pair of small segments
        // would re-trigger the Nagle/delayed-ACK stall on every exchange.
        let message = render_response(status, extra_headers, body, keep_alive);
        stream.write_all(&message)?;
        stream.flush()
    }

    /// Begins a chunked-transfer response (always `Connection: close`:
    /// event streams end with the connection).
    ///
    /// # Errors
    ///
    /// [`io::Error`] from writing the response head.
    pub fn begin_chunked(&mut self, status: u16) -> io::Result<ChunkedWriter<'_>> {
        ChunkedWriter::begin(self.reader.get_mut(), status)
    }

    /// Client side: writes one request and flushes it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying writes.
    pub fn write_request(
        &mut self,
        host: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        keep_alive: bool,
    ) -> io::Result<()> {
        let stream = self.reader.get_mut();
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        stream.write_all(&message)?;
        stream.flush()
    }

    /// Client side: reads a complete response, reassembling chunked
    /// bodies.
    ///
    /// # Errors
    ///
    /// [`io::Error`] for connection failures or malformed responses.
    pub fn read_response(&mut self) -> io::Result<Response> {
        self.read_response_streaming(|_| {})
    }

    /// Client side: reads a response, invoking `on_chunk` for every chunk
    /// of a chunked body as it arrives (fixed-length bodies get a single
    /// callback). The complete body is still returned.
    ///
    /// # Errors
    ///
    /// [`io::Error`] for connection failures or malformed responses.
    pub fn read_response_streaming(
        &mut self,
        mut on_chunk: impl FnMut(&[u8]),
    ) -> io::Result<Response> {
        let reader = &mut self.reader;
        let Some(line) = read_line_bounded(reader, "status")? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                ClosedBeforeResponse,
            ));
        };
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;

        let ParsedHeaders {
            headers,
            content_length,
            chunked,
        } = read_headers(reader)?;

        let mut body = Vec::new();
        if chunked {
            loop {
                let Some(size_line) = read_line_bounded(reader, "chunk size")? else {
                    return Err(bad("connection closed inside chunked body"));
                };
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| bad("malformed chunk size"))?;
                // Checked form: a hostile size near usize::MAX must hit
                // this bound, not wrap the addition and then fail to
                // allocate.
                if size > MAX_BODY_BYTES - body.len() {
                    return Err(bad("response body too large"));
                }
                let mut chunk = vec![0u8; size];
                reader.read_exact(&mut chunk)?;
                let mut crlf = [0u8; 2];
                reader.read_exact(&mut crlf)?;
                if size == 0 {
                    break;
                }
                on_chunk(&chunk);
                body.extend_from_slice(&chunk);
            }
        } else {
            match content_length {
                Some(n) => {
                    body.resize(n, 0);
                    reader.read_exact(&mut body)?;
                }
                None => {
                    // Read to EOF (connection: close framing) — through a
                    // `take` so a peer streaming forever is cut off at the
                    // bound, not at OOM.
                    reader
                        .by_ref()
                        .take((MAX_BODY_BYTES + 1) as u64)
                        .read_to_end(&mut body)?;
                    if body.len() > MAX_BODY_BYTES {
                        return Err(bad("response body too large"));
                    }
                }
            }
            if !body.is_empty() {
                on_chunk(&body);
            }
        }
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Per-connection limits for [`serve_connection`].
#[derive(Debug, Clone, Copy)]
pub struct ConnectionPolicy {
    /// How long a kept-alive connection may sit with no request before
    /// the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server forces
    /// `Connection: close` — the explicit pipeline/keep-alive bound.
    pub max_requests: u32,
}

impl Default for ConnectionPolicy {
    fn default() -> Self {
        ConnectionPolicy {
            idle_timeout: Duration::from_secs(10),
            max_requests: 1024,
        }
    }
}

/// What a [`serve_connection`] handler did with the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The response was written with `Connection: keep-alive`; the loop
    /// reads the next request.
    KeepAlive,
    /// The response closed the connection (explicitly, or via a chunked
    /// stream); the loop ends.
    Close,
}

/// The server-side connection state machine shared by `dominod` and
/// `dominogw`: reads requests in order, hands each to `handle` along with
/// the keep-alive decision (`false` on the connection's last allowed
/// request or when the client sent `Connection: close` — the handler must
/// write that `Connection` header), and loops until close.
///
/// Malformed requests get a `400` and a close; a clean EOF or an idle
/// timeout closes silently. Errors are swallowed — a connection that dies
/// mid-response has no one left to tell.
pub fn serve_connection(
    stream: TcpStream,
    policy: &ConnectionPolicy,
    mut handle: impl FnMut(&mut HttpConnection, &Request, bool) -> io::Result<Served>,
) {
    let mut conn = HttpConnection::new(stream);
    let mut served: u32 = 0;
    loop {
        // The idle deadline arms only between requests; mid-request stalls
        // surface as errors from next_request instead.
        let _ = conn.stream().set_read_timeout(Some(policy.idle_timeout));
        let request = match conn.next_request() {
            Ok(NextRequest::Request(request)) => request,
            Ok(NextRequest::Closed | NextRequest::TimedOut) => return,
            Err(_) => {
                let _ = conn.write_response(400, &[], b"{\"error\":\"malformed request\"}", false);
                return;
            }
        };
        served += 1;
        let keep_alive = served < policy.max_requests && !request.wants_close();
        match handle(&mut conn, &request, keep_alive) {
            Ok(Served::KeepAlive) if keep_alive => {}
            _ => return,
        }
    }
}

/// An incremental request parser for non-blocking connections: the
/// reactor [`feed`](RequestParser::feed)s it whatever bytes the socket
/// had, and [`try_next`](RequestParser::try_next) yields a [`Request`]
/// once a complete one has accumulated. Pipelined requests queue in the
/// internal buffer and come out one `try_next` at a time.
///
/// Bounds are enforced *while buffering*, matching the blocking parser:
/// an endless newline-free line errors at [`MAX_LINE_BYTES`], a header
/// flood at [`MAX_HEADERS`], an oversized `Content-Length` at
/// [`MAX_BODY_BYTES`] — all before the hostile bytes are held.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends freshly read socket bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// `true` when no bytes of a next request have arrived — the
    /// idle-timeout close is silent exactly when this holds (a partial
    /// request dying at the deadline mirrors the blocking path's
    /// mid-request stall error instead).
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to parse one complete request off the front of the buffer.
    /// `Ok(None)` means "incomplete — feed more bytes".
    ///
    /// # Errors
    ///
    /// [`io::Error`] with `InvalidData` for the same malformed shapes the
    /// blocking [`HttpConnection::next_request`] rejects.
    pub fn try_next(&mut self) -> io::Result<Option<Request>> {
        let Some(line_end) = find_line(&self.buf, 0, "request")? else {
            return Ok(None);
        };
        let line = std::str::from_utf8(&self.buf[..line_end])
            .map_err(|_| bad("malformed request line"))?;
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Err(bad("malformed request line"));
        };
        let method = method.to_ascii_uppercase();
        let (path, query) = split_target(target);

        // Header block: one bounded line at a time until the blank line.
        let mut cursor = line_end + 1;
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: usize = 0;
        loop {
            let Some(end) = find_line(&self.buf, cursor, "header")? else {
                return Ok(None);
            };
            let header = std::str::from_utf8(&self.buf[cursor..end])
                .map_err(|_| bad("malformed header"))?
                .trim_end();
            cursor = end + 1;
            if header.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(bad("too many headers"));
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(bad("malformed header"));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                let n: usize = value
                    .parse()
                    .map_err(|_| bad("non-numeric content-length"))?;
                if n > MAX_BODY_BYTES {
                    return Err(bad("body too large"));
                }
                content_length = n;
            }
            headers.push((name, value));
        }

        if self.buf.len() < cursor + content_length {
            return Ok(None);
        }
        let body = self.buf[cursor..cursor + content_length].to_vec();
        self.buf.drain(..cursor + content_length);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
        }))
    }
}

/// Finds the `\n` ending the line that starts at `from`, enforcing
/// [`MAX_LINE_BYTES`] on both complete and still-accumulating lines.
fn find_line(buf: &[u8], from: usize, what: &str) -> io::Result<Option<usize>> {
    match buf[from.min(buf.len())..].iter().position(|&b| b == b'\n') {
        Some(i) if i + 1 > MAX_LINE_BYTES => Err(bad(&format!("{what} line too long"))),
        Some(i) => Ok(Some(from + i)),
        None if buf.len() - from.min(buf.len()) > MAX_LINE_BYTES => {
            Err(bad(&format!("{what} line too long")))
        }
        None => Ok(None),
    }
}

/// The header block of a request or response.
struct ParsedHeaders {
    headers: Vec<(String, String)>,
    content_length: Option<usize>,
    chunked: bool,
}

/// Reads the header block shared by both message directions: bounded
/// lines, bounded count, lowercased names, `Content-Length` validated
/// against [`MAX_BODY_BYTES`], `Transfer-Encoding: chunked` detected.
fn read_headers(reader: &mut impl BufRead) -> io::Result<ParsedHeaders> {
    let mut parsed = ParsedHeaders {
        headers: Vec::new(),
        content_length: None,
        chunked: false,
    };
    loop {
        let Some(header) = read_line_bounded(reader, "header")? else {
            return Err(bad("connection closed inside headers"));
        };
        let header = header.trim_end();
        if header.is_empty() {
            return Ok(parsed);
        }
        if parsed.headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| bad("non-numeric content-length"))?;
                if n > MAX_BODY_BYTES {
                    return Err(bad("body too large"));
                }
                parsed.content_length = Some(n);
            }
            "transfer-encoding" if value.eq_ignore_ascii_case("chunked") => parsed.chunked = true,
            _ => {}
        }
        parsed.headers.push((name, value));
    }
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Marker error payload: the peer closed cleanly before sending any byte
/// of the response. On a kept-alive connection this is the signature of a
/// server that idle-closed without reading the request — the one
/// request/response failure a client may safely retry even for
/// non-idempotent requests (any later EOF may mean the request was
/// processed and the response lost).
#[derive(Debug)]
pub struct ClosedBeforeResponse;

impl std::fmt::Display for ClosedBeforeResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("connection closed before any response byte")
    }
}

impl std::error::Error for ClosedBeforeResponse {}

/// `true` when `e` is the closed-before-any-response-byte failure from
/// [`HttpConnection::read_response`] (see [`ClosedBeforeResponse`]).
pub fn closed_before_response(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<ClosedBeforeResponse>())
}

/// `true` when a raw request target's query string asks for long-poll /
/// blocking behaviour — the same test as [`Request::wants_wait`], for
/// callers (like the client's connection pooling) that hold an
/// unparsed target rather than a [`Request`]. `wait` may appear
/// anywhere in the query string, as `1` or `true`.
pub fn target_wants_wait(target: &str) -> bool {
    let (_, query) = split_target(target);
    matches!(
        query
            .iter()
            .find(|(k, _)| k == "wait")
            .map(|(_, v)| v.as_str()),
        Some("1") | Some("true")
    )
}

/// Splits a request target into its path and parsed query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Canonical reason phrases for the status codes this service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A chunked-transfer response in progress: each [`ChunkedWriter::chunk`]
/// is flushed immediately so clients observe events as they happen.
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from writing the head.
    pub fn begin(stream: &'a mut TcpStream, status: u16) -> io::Result<Self> {
        stream.write_all(&render_chunked_head(status))?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying writes.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        self.stream.write_all(&render_chunk(data))?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying writes.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(render_chunk_end())?;
        self.stream.flush()
    }
}

/// Renders a complete fixed-length response — head and body in one
/// buffer — exactly as [`HttpConnection::write_response`] puts it on the
/// wire. The reactor path queues these bytes for writable-readiness
/// instead of writing inline, so sharing the renderer is what keeps the
/// two paths byte-identical.
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nserver: dominod\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    message
}

/// Renders the head of a chunked-transfer response (always
/// `Connection: close`), exactly as [`ChunkedWriter::begin`] writes it.
pub fn render_chunked_head(status: u16) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nserver: dominod\r\ncontent-type: application/json\r\n\
         transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        reason(status)
    )
    .into_bytes()
}

/// Frames one chunk (`{len:x}\r\n` + data + `\r\n`). Empty data renders
/// as no bytes at all — an empty chunk would terminate the stream.
pub fn render_chunk(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut framed = format!("{:x}\r\n", data.len()).into_bytes();
    framed.extend_from_slice(data);
    framed.extend_from_slice(b"\r\n");
    framed
}

/// The terminating zero-length chunk of a chunked stream.
pub fn render_chunk_end() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// A parsed client-side response: status code plus the complete body
/// (chunked responses are reassembled; use
/// [`HttpConnection::read_response_streaming`] to observe chunks as they
/// arrive).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The reassembled body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of the (case-insensitively matched) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the server will keep the connection open afterwards.
    pub fn keeps_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`io::Error`] with `InvalidData` if the body is not valid UTF-8.
    pub fn text(&self) -> io::Result<String> {
        String::from_utf8(self.body.clone()).map_err(|_| bad("response body is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn read_one(server: TcpStream) -> io::Result<NextRequest> {
        HttpConnection::new(server).next_request()
    }

    #[test]
    fn request_roundtrip_with_body_and_query() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /jobs?wait=1&x HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let NextRequest::Request(req) = read_one(server).unwrap() else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert!(req.wants_wait());
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("t"));
        assert_eq!(req.target(), "/jobs?wait=1&x");
    }

    #[test]
    fn target_wants_wait_parses_the_query_like_the_server() {
        assert!(target_wants_wait("/jobs?wait=1"));
        assert!(target_wants_wait("/jobs?wait=true"));
        assert!(target_wants_wait("/jobs?wait=1&x"));
        assert!(target_wants_wait("/jobs/7/result?a=b&wait=true"));
        assert!(!target_wants_wait("/jobs"));
        assert!(!target_wants_wait("/jobs?wait=0"));
        assert!(!target_wants_wait("/jobs?await=1"));
        assert!(!target_wants_wait("/jobs?waitx=1"));
    }

    #[test]
    fn closed_before_any_response_byte_is_distinguished() {
        // A clean close before the status line carries the marker...
        let (client, server) = pair();
        drop(server);
        let err = HttpConnection::new(client).read_response().unwrap_err();
        assert!(closed_before_response(&err));
        // ...an EOF mid-body (same ErrorKind) does not: the response had
        // started, so the request was definitely processed.
        let (client, mut server) = pair();
        server
            .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc")
            .unwrap();
        drop(server);
        let err = HttpConnection::new(client).read_response().unwrap_err();
        assert!(!closed_before_response(&err));
    }

    #[test]
    fn fixed_response_roundtrip() {
        let (client, server) = pair();
        let mut server = HttpConnection::new(server);
        server
            .write_response(429, &[("retry-after", "1")], b"{\"e\":1}", false)
            .unwrap();
        drop(server);
        let resp = HttpConnection::new(client).read_response().unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(!resp.keeps_alive());
        assert_eq!(resp.body, b"{\"e\":1}");
    }

    #[test]
    fn keep_alive_connection_carries_many_requests() {
        let (client, server) = pair();
        let mut client = HttpConnection::new(client);
        let server_side = std::thread::spawn(move || {
            let mut conn = HttpConnection::new(server);
            for i in 0..3u32 {
                let NextRequest::Request(req) = conn.next_request().unwrap() else {
                    panic!("expected request {i}");
                };
                assert_eq!(req.path, format!("/r{i}"));
                conn.write_response(200, &[], format!("resp{i}").as_bytes(), i < 2)
                    .unwrap();
            }
        });
        for i in 0..3u32 {
            client
                .write_request("t", "GET", &format!("/r{i}"), None, i < 2)
                .unwrap();
            let resp = client.read_response().unwrap();
            assert_eq!(resp.body, format!("resp{i}").as_bytes());
            assert_eq!(resp.keeps_alive(), i < 2);
        }
        server_side.join().unwrap();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (mut client, server) = pair();
        // Three requests in one write, before the server reads anything.
        client
            .write_all(
                b"GET /a HTTP/1.1\r\nconnection: keep-alive\r\n\r\n\
                  GET /b HTTP/1.1\r\nconnection: keep-alive\r\n\r\n\
                  GET /c HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut conn = HttpConnection::new(server);
        let mut paths = Vec::new();
        for _ in 0..3 {
            let NextRequest::Request(req) = conn.next_request().unwrap() else {
                panic!("expected a pipelined request");
            };
            paths.push(req.path.clone());
            conn.write_response(200, &[], req.path.as_bytes(), !req.wants_close())
                .unwrap();
        }
        assert_eq!(paths, ["/a", "/b", "/c"]);
        // After the first parse the rest were already buffered.
        let mut client = HttpConnection::new(client);
        for path in ["/a", "/b", "/c"] {
            assert_eq!(client.read_response().unwrap().body, path.as_bytes());
        }
    }

    #[test]
    fn idle_timeout_yields_timed_out_not_error() {
        let (_client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = HttpConnection::new(server);
        assert!(matches!(
            conn.next_request().unwrap(),
            NextRequest::TimedOut
        ));
    }

    #[test]
    fn stall_mid_request_is_an_error_not_idle() {
        let (mut client, server) = pair();
        // Half a request line, then silence.
        client.write_all(b"GET /half").unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = HttpConnection::new(server);
        assert!(conn.next_request().is_err());
    }

    #[test]
    fn serve_connection_honors_close_and_max_requests() {
        let (mut client, server) = pair();
        client
            .write_all(
                b"GET /1 HTTP/1.1\r\n\r\n\
                  GET /2 HTTP/1.1\r\n\r\n\
                  GET /3 HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let policy = ConnectionPolicy {
            idle_timeout: Duration::from_millis(200),
            max_requests: 2,
        };
        let server_side = std::thread::spawn(move || {
            let mut seen = Vec::new();
            serve_connection(server, &policy, |conn, req, keep_alive| {
                seen.push((req.path.clone(), keep_alive));
                conn.write_response(200, &[], req.path.as_bytes(), keep_alive)?;
                Ok(if keep_alive {
                    Served::KeepAlive
                } else {
                    Served::Close
                })
            });
            seen
        });
        let mut reader = HttpConnection::new(client);
        assert_eq!(reader.read_response().unwrap().body, b"/1");
        let second = reader.read_response().unwrap();
        assert_eq!(second.body, b"/2");
        assert!(!second.keeps_alive(), "request #max_requests closes");
        // The third pipelined request is never served.
        assert!(reader.read_response().is_err());
        let seen = server_side.join().unwrap();
        assert_eq!(
            seen,
            vec![("/1".to_string(), true), ("/2".to_string(), false)]
        );
    }

    #[test]
    fn serve_connection_half_close_mid_pipeline_stops_cleanly() {
        let (mut client, server) = pair();
        // One complete request, then half of a second, then FIN.
        client
            .write_all(b"GET /ok HTTP/1.1\r\n\r\nGET /tru")
            .unwrap();
        drop(client);
        let policy = ConnectionPolicy::default();
        let served = std::thread::spawn(move || {
            let mut count = 0;
            serve_connection(server, &policy, |conn, req, keep_alive| {
                count += 1;
                conn.write_response(200, &[], req.path.as_bytes(), keep_alive)?;
                Ok(Served::KeepAlive)
            });
            count
        });
        // Only the complete request is served; the truncated one is not a
        // panic, not a hang — just a close.
        assert_eq!(served.join().unwrap(), 1);
    }

    #[test]
    fn chunked_response_streams_and_reassembles() {
        let (client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            let mut w = ChunkedWriter::begin(&mut server, 200).unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        });
        let mut seen = Vec::new();
        let resp = HttpConnection::new(client)
            .read_response_streaming(|c| seen.push(c.to_vec()))
            .unwrap();
        writer.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let (mut client, server) = pair();
        client
            .write_all(
                format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX).as_bytes(),
            )
            .unwrap();
        assert!(read_one(server).is_err());
    }

    #[test]
    fn closed_connection_yields_none() {
        let (client, server) = pair();
        drop(client);
        assert!(matches!(read_one(server).unwrap(), NextRequest::Closed));
    }

    #[test]
    fn endless_header_line_is_cut_off_at_the_line_bound() {
        let (mut client, server) = pair();
        let reader = std::thread::spawn(move || read_one(server));
        // The reader stops consuming once it errors; bound our writes so a
        // full socket buffer can never turn this test into a hang.
        client
            .set_write_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let _ = client.write_all(b"GET / HTTP/1.1\r\nx-fill: ");
        // Twice the line bound, no newline: the reader must error at the
        // bound, not buffer until OOM or EOF.
        let chunk = vec![b'a'; 8 * 1024];
        for _ in 0..16 {
            if client.write_all(&chunk).is_err() {
                break; // reader already gave up — exactly what we want
            }
        }
        drop(client);
        let err = reader.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn header_count_is_bounded() {
        let (mut client, server) = pair();
        let reader = std::thread::spawn(move || read_one(server));
        let _ = client.write_all(b"GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 8) {
            if client
                .write_all(format!("x-h{i}: v\r\n").as_bytes())
                .is_err()
            {
                break;
            }
        }
        drop(client);
        assert!(reader.join().unwrap().is_err());
    }

    #[test]
    fn request_parser_accumulates_byte_at_a_time() {
        let wire = b"POST /jobs?wait=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = RequestParser::new();
        assert!(parser.is_idle());
        for (i, byte) in wire.iter().enumerate() {
            parser.feed(std::slice::from_ref(byte));
            let parsed = parser.try_next().unwrap();
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "complete at byte {i}?");
                assert!(!parser.is_idle());
            } else {
                let req = parsed.expect("complete request");
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/jobs");
                assert!(req.wants_wait());
                assert_eq!(req.body, b"hello");
                assert_eq!(req.header("host"), Some("t"));
            }
        }
        assert!(parser.is_idle(), "buffer fully consumed");
    }

    #[test]
    fn request_parser_yields_pipelined_requests_in_order() {
        let mut parser = RequestParser::new();
        parser.feed(
            b"GET /a HTTP/1.1\r\n\r\n\
              POST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
              GET /c HTTP/1.1\r\n\r\n",
        );
        let mut paths = Vec::new();
        while let Some(req) = parser.try_next().unwrap() {
            paths.push(req.path);
        }
        assert_eq!(paths, ["/a", "/b", "/c"]);
    }

    #[test]
    fn request_parser_enforces_bounds_like_the_blocking_parser() {
        // Endless newline-free line: cut off at the line bound.
        let mut parser = RequestParser::new();
        parser.feed(&vec![b'a'; MAX_LINE_BYTES + 2]);
        assert!(parser.try_next().is_err());

        // Oversized declared body: rejected at the header, before bytes.
        let mut parser = RequestParser::new();
        parser
            .feed(format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX).as_bytes());
        assert!(parser.try_next().is_err());

        // Malformed request line.
        let mut parser = RequestParser::new();
        parser.feed(b"NONSENSE\r\n\r\n");
        assert!(parser.try_next().is_err());
    }

    #[test]
    fn render_helpers_match_the_blocking_writers_bytes() {
        let (client, server) = pair();
        let mut server = HttpConnection::new(server);
        server
            .write_response(429, &[("retry-after", "1")], b"{\"e\":1}", true)
            .unwrap();
        drop(server);
        let mut wire = Vec::new();
        let mut client = client;
        client.read_to_end(&mut wire).unwrap();
        assert_eq!(
            wire,
            render_response(429, &[("retry-after", "1")], b"{\"e\":1}", true)
        );

        let (client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            let mut w = ChunkedWriter::begin(&mut server, 200).unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.finish().unwrap();
        });
        let mut wire = Vec::new();
        let mut client = client;
        client.read_to_end(&mut wire).unwrap();
        writer.join().unwrap();
        let mut expected = render_chunked_head(200);
        expected.extend_from_slice(&render_chunk(b"{\"a\":1}\n"));
        expected.extend_from_slice(render_chunk_end());
        assert_eq!(wire, expected);
        assert!(render_chunk(b"").is_empty(), "empty chunk renders nothing");
    }

    #[test]
    fn huge_chunk_size_is_rejected_without_overflow() {
        let (client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            // A malformed chunked response claiming a ~usize::MAX chunk.
            let _ = server.write_all(
                b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nffffffffffffffff\r\n",
            );
        });
        let err = HttpConnection::new(client).read_response().unwrap_err();
        writer.join().unwrap();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }
}
