//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The build environment has no registry access, so — following the
//! `crates/compat` precedent — the service carries its own wire layer
//! instead of hyper/axum. It implements exactly what `dominod` and its
//! clients need and nothing more:
//!
//! * request parsing: request line, headers, `Content-Length` bodies
//!   (bounded by [`MAX_BODY_BYTES`]), query-string splitting;
//! * response writing: fixed-length bodies with `Connection: close`
//!   semantics (one request per connection), and `Transfer-Encoding:
//!   chunked` streaming for the `/jobs/:id/events` endpoint;
//! * response reading for the client side, including a streaming chunk
//!   decoder that yields line-delimited event records as they arrive.
//!
//! No keep-alive, no pipelining, no TLS, no compression: every connection
//! carries one request and one response, which keeps the server's
//! per-connection state machine trivial and the load harness honest (each
//! request pays the full connection cost).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request/response bodies (16 MiB). Inline BLIF
/// sources for the suite circuits are a few hundred KiB at most; anything
/// larger is a malformed or hostile request and is rejected before it can
/// balloon server memory.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on any single protocol line (request/status line, one
/// header, a chunk-size line). Like the body bound, this is enforced
/// *while reading*: a peer streaming an endless newline-free line is cut
/// off here, not at OOM.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Upper bound on the number of headers per message.
pub const MAX_HEADERS: usize = 128;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
/// Returns `Ok(None)` on a clean EOF before any byte.
fn read_line_bounded(reader: &mut impl BufRead, what: &str) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take((MAX_LINE_BYTES + 1) as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(bad(&format!("{what} line too long")));
    }
    Ok(Some(line))
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, ...), uppercased.
    pub method: String,
    /// Decoded path without the query string (`/jobs/42`).
    pub path: String,
    /// Query parameters in order of appearance (`?wait=1`).
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the query string asks for long-poll/blocking behaviour
    /// (`?wait=1` or `?wait=true`).
    pub fn wants_wait(&self) -> bool {
        matches!(self.query_param("wait"), Some("1") | Some("true"))
    }

    /// First value of the (case-insensitively matched) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` when the peer
/// closed the connection before sending a request line.
///
/// # Errors
///
/// [`io::Error`] with `InvalidData` for malformed requests (bad request
/// line, non-numeric or oversized `Content-Length`, truncated body).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let Some(line) = read_line_bounded(&mut reader, "request")? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed request line"));
    };
    let method = method.to_ascii_uppercase();
    let (path, query) = split_target(target);

    let parsed = read_headers(&mut reader)?;

    let mut body = vec![0u8; parsed.content_length.unwrap_or(0)];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        headers: parsed.headers,
        body,
    }))
}

/// The header block of a request or response.
struct ParsedHeaders {
    headers: Vec<(String, String)>,
    content_length: Option<usize>,
    chunked: bool,
}

/// Reads the header block shared by both message directions: bounded
/// lines, bounded count, lowercased names, `Content-Length` validated
/// against [`MAX_BODY_BYTES`], `Transfer-Encoding: chunked` detected.
fn read_headers(reader: &mut impl BufRead) -> io::Result<ParsedHeaders> {
    let mut parsed = ParsedHeaders {
        headers: Vec::new(),
        content_length: None,
        chunked: false,
    };
    loop {
        let Some(header) = read_line_bounded(reader, "header")? else {
            return Err(bad("connection closed inside headers"));
        };
        let header = header.trim_end();
        if header.is_empty() {
            return Ok(parsed);
        }
        if parsed.headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| bad("non-numeric content-length"))?;
                if n > MAX_BODY_BYTES {
                    return Err(bad("body too large"));
                }
                parsed.content_length = Some(n);
            }
            "transfer-encoding" if value.eq_ignore_ascii_case("chunked") => parsed.chunked = true,
            _ => {}
        }
        parsed.headers.push((name, value));
    }
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Splits a request target into its path and parsed query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Canonical reason phrases for the status codes this service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes it. The connection
/// is meant to be dropped afterwards (`Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nserver: dominod\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: each [`ChunkedWriter::chunk`]
/// is flushed immediately so clients observe events as they happen.
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn begin(stream: &'a mut TcpStream, status: u16) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nserver: dominod\r\ncontent-type: application/json\r\n\
             transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response: status code plus the complete body
/// (chunked responses are reassembled; use [`read_response_streaming`] to
/// observe chunks as they arrive).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The reassembled body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of the (case-insensitively matched) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`io::Error`] with `InvalidData` if the body is not valid UTF-8.
    pub fn text(&self) -> io::Result<String> {
        String::from_utf8(self.body.clone()).map_err(|_| bad("response body is not UTF-8"))
    }
}

/// Reads a complete response, reassembling chunked bodies.
///
/// # Errors
///
/// [`io::Error`] for connection failures or malformed responses.
pub fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    read_response_streaming(stream, |_| {})
}

/// Reads a response, invoking `on_chunk` for every chunk of a chunked
/// body as it arrives (fixed-length bodies get a single callback). The
/// complete body is still returned.
///
/// # Errors
///
/// [`io::Error`] for connection failures or malformed responses.
pub fn read_response_streaming(
    stream: &mut TcpStream,
    mut on_chunk: impl FnMut(&[u8]),
) -> io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let Some(line) = read_line_bounded(&mut reader, "status")? else {
        return Err(bad("connection closed before status line"));
    };
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let ParsedHeaders {
        headers,
        content_length,
        chunked,
    } = read_headers(&mut reader)?;

    let mut body = Vec::new();
    if chunked {
        loop {
            let Some(size_line) = read_line_bounded(&mut reader, "chunk size")? else {
                return Err(bad("connection closed inside chunked body"));
            };
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad("malformed chunk size"))?;
            // Checked form: a hostile size near usize::MAX must hit this
            // bound, not wrap the addition and then fail to allocate.
            if size > MAX_BODY_BYTES - body.len() {
                return Err(bad("response body too large"));
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            if size == 0 {
                break;
            }
            on_chunk(&chunk);
            body.extend_from_slice(&chunk);
        }
    } else {
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                // Read to EOF (connection: close framing) — through a
                // `take` so a peer streaming forever is cut off at the
                // bound, not at OOM.
                reader
                    .by_ref()
                    .take((MAX_BODY_BYTES + 1) as u64)
                    .read_to_end(&mut body)?;
                if body.len() > MAX_BODY_BYTES {
                    return Err(bad("response body too large"));
                }
            }
        }
        if !body.is_empty() {
            on_chunk(&body);
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn request_roundtrip_with_body_and_query() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /jobs?wait=1&x HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let req = read_request(&mut server).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert!(req.wants_wait());
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("t"));
    }

    #[test]
    fn fixed_response_roundtrip() {
        let (mut client, mut server) = pair();
        write_response(&mut server, 429, &[("retry-after", "1")], b"{\"e\":1}").unwrap();
        drop(server);
        let resp = read_response(&mut client).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.body, b"{\"e\":1}");
    }

    #[test]
    fn chunked_response_streams_and_reassembles() {
        let (mut client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            let mut w = ChunkedWriter::begin(&mut server, 200).unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        });
        let mut seen = Vec::new();
        let resp = read_response_streaming(&mut client, |c| seen.push(c.to_vec())).unwrap();
        writer.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX).as_bytes(),
            )
            .unwrap();
        assert!(read_request(&mut server).is_err());
    }

    #[test]
    fn closed_connection_yields_none() {
        let (client, mut server) = pair();
        drop(client);
        assert!(read_request(&mut server).unwrap().is_none());
    }

    #[test]
    fn endless_header_line_is_cut_off_at_the_line_bound() {
        let (mut client, mut server) = pair();
        let reader = std::thread::spawn(move || read_request(&mut server));
        // The reader stops consuming once it errors; bound our writes so a
        // full socket buffer can never turn this test into a hang.
        client
            .set_write_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let _ = client.write_all(b"GET / HTTP/1.1\r\nx-fill: ");
        // Twice the line bound, no newline: the reader must error at the
        // bound, not buffer until OOM or EOF.
        let chunk = vec![b'a'; 8 * 1024];
        for _ in 0..16 {
            if client.write_all(&chunk).is_err() {
                break; // reader already gave up — exactly what we want
            }
        }
        drop(client);
        let err = reader.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn header_count_is_bounded() {
        let (mut client, mut server) = pair();
        let reader = std::thread::spawn(move || read_request(&mut server));
        let _ = client.write_all(b"GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 8) {
            if client
                .write_all(format!("x-h{i}: v\r\n").as_bytes())
                .is_err()
            {
                break;
            }
        }
        drop(client);
        assert!(reader.join().unwrap().is_err());
    }

    #[test]
    fn huge_chunk_size_is_rejected_without_overflow() {
        let (mut client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            // A malformed chunked response claiming a ~usize::MAX chunk.
            let _ = server.write_all(
                b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nffffffffffffffff\r\n",
            );
        });
        let err = read_response(&mut client).unwrap_err();
        writer.join().unwrap();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }
}
