//! `dominod`'s core: the reactor front, the HTTP router, the worker pool
//! and graceful shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /jobs ──▶ parse JobSpec ──▶ resolve circuit ──▶ cache probe
//!                   (400)          (400; memoized)      │hit: 200, no queue
//!                                                       │miss
//!                                                       ▼ admission queue
//!                                                      (202 | 429+Retry-After)
//!                                                          │ FIFO
//!                                                          ▼
//!                                               worker: FlowEngine::run_one
//!                                               (shared ResultCache: get,
//!                                                run, atomic store)
//!                                                          │
//!          GET /jobs/:id ◀── status/outcome ◀── registry ◀─┘
//!          GET /jobs/:id/result   (the engine's exact outcome bytes)
//!          GET /jobs/:id/events   (chunked stream, one JSON line each)
//!          DELETE /jobs/:id       (cooperative cancel)
//! ```
//!
//! # Threads
//!
//! Connections no longer own threads. One reactor thread
//! ([`crate::front`]) multiplexes every socket; a small handler pool runs
//! the router; the worker pool executes jobs; and one *pump* thread
//! services every parked long-poll (`?wait=1`) and `/events` stream by
//! polling the registry — so ten thousand clients blocked on results
//! cost one thread, total, not ten thousand.
//!
//! Determinism holds across the wire because the server stores and serves
//! the engine's serialized [`FlowOutcome`](domino_engine::FlowOutcome)
//! *verbatim*: for any spec, `GET /jobs/:id/result` is byte-identical to
//! the JSONL a local `dominoc run` emits, warm or cold cache, at any
//! worker or client count (pinned by `tests/server_integration.rs`).
//!
//! # Shutdown
//!
//! `POST /shutdown` (or [`Server::request_shutdown`]) starts the drain:
//! the reactor closes its listener and idle connections, admissions turn
//! into `503`, workers finish every job already admitted, the pump
//! answers every parked waiter, and in-flight connections close after
//! their final response. The on-disk cache needs no separate flush —
//! every store is written (atomically) at completion time — so a drained
//! server can be killed with nothing in flight.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::collections::HashMap;

use domino_engine::json::{parse, Json};
use domino_engine::{
    CircuitSource, EngineConfig, EngineError, FlowEngine, FlowJob, JobResult, JobSpec, ResultCache,
};

use crate::config::ArgTable;
use crate::front::{FrontConfig, FrontHandle, HttpFront, Responder, StreamHandle};
use crate::http::Request;
use crate::protocol::{CacheCounters, ErrorReply, JobStatus};
use crate::registry::{AdmitError, Registry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. `0` means one per available CPU.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Shared result cache; `None` disables caching.
    pub cache: Option<Arc<ResultCache>>,
    /// Warm-state snapshot store sitting *under* the result cache: on a
    /// cache miss the worker rebuilds the flow from a persisted BDD +
    /// probability snapshot instead of recomputing the kernel. `None`
    /// disables snapshots.
    pub snapshots: Option<Arc<domino_engine::SnapshotStore>>,
    /// Milliseconds a kept-alive connection may idle between requests
    /// before the server closes it.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the server forces
    /// `Connection: close`.
    pub max_requests_per_connection: u32,
    /// Concurrently open connections the reactor accepts before
    /// answering further accepts with `503` and an immediate close.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: format!("127.0.0.1:{DEFAULT_PORT}"),
            workers: 0,
            queue_capacity: 64,
            cache: None,
            snapshots: None,
            idle_timeout_ms: 10_000,
            max_requests_per_connection: 1024,
            max_connections: crate::config::DEFAULT_MAX_CONNECTIONS,
        }
    }
}

impl ServeConfig {
    /// The server's flag table (see [`crate::config`]): the single
    /// declaration behind both [`ServeConfig::parse_args`] and the
    /// `--help` text of `dominod` / `dominoc serve`.
    pub fn arg_table() -> ArgTable {
        let table = ArgTable::new("server")
            .flag(
                "--addr",
                "<host:port>",
                "bind address [127.0.0.1:7171]; port 0 = ephemeral",
            )
            .flag("--workers", "<n>", "worker threads, 0 = all CPUs [0]")
            .flag("--queue", "<n>", "admission queue capacity [64]")
            .flag(
                "--cache",
                "<dir>",
                "on-disk result cache (shared with dominoc)",
            )
            .flag(
                "--cache-mem-entries",
                "<n>",
                "in-memory cache entry budget, 0 = unbounded [0]",
            )
            .flag(
                "--cache-disk-bytes",
                "<n>",
                "on-disk cache byte budget, 0 = unbounded [0]",
            )
            .flag(
                "--snapshot-dir",
                "<dir>",
                "warm-state snapshot store: persisted BDD/probability\nkernels survive restarts (shared with dominoc)",
            )
            .flag(
                "--snapshot-disk-bytes",
                "<n>",
                "snapshot store byte budget, 0 = unbounded [0]",
            );
        crate::config::failpoint_docs(crate::config::connection_flags(table))
    }

    /// Parses the server CLI flags (`--addr`, `--workers`, `--queue`,
    /// `--cache`, `--cache-mem-entries`, `--cache-disk-bytes`,
    /// `--snapshot-dir`, `--snapshot-disk-bytes`, `--idle-ms`,
    /// `--max-requests`, `--max-connections`) shared by `dominod` and
    /// `dominoc serve`, so the two entry points cannot drift.
    ///
    /// # Errors
    ///
    /// A rendered usage message for unknown flags, missing values,
    /// non-integer counts, a zero queue capacity, cache/snapshot budgets
    /// without their directory flag, or an unusable cache or snapshot
    /// directory.
    pub fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
        let parsed = Self::arg_table().parse(args)?;
        let mut config = ServeConfig::default();
        parsed.set_string("--addr", &mut config.addr);
        parsed.set_integer("--workers", &mut config.workers)?;
        parsed.set_integer_at_least_one("--queue", &mut config.queue_capacity)?;
        crate::config::apply_connection_flags(
            &parsed,
            &mut config.idle_timeout_ms,
            &mut config.max_requests_per_connection,
            &mut config.max_connections,
        )?;
        let mut cache_mem_entries: usize = 0;
        parsed.set_integer("--cache-mem-entries", &mut cache_mem_entries)?;
        let mut cache_disk_bytes: u64 = 0;
        parsed.set_integer("--cache-disk-bytes", &mut cache_disk_bytes)?;
        // The cache is built last so the budget flags work in any order
        // relative to `--cache`.
        match parsed.last("--cache") {
            Some(dir) => {
                let cache = ResultCache::on_disk(dir)
                    .map_err(|e| e.to_string())?
                    .with_memory_entry_budget(cache_mem_entries)
                    .with_disk_byte_budget(cache_disk_bytes);
                config.cache = Some(Arc::new(cache));
            }
            None if cache_mem_entries != 0 || cache_disk_bytes != 0 => {
                return Err("cache budget flags require --cache".to_string());
            }
            None => {}
        }
        let mut snapshot_disk_bytes: u64 = 0;
        parsed.set_integer("--snapshot-disk-bytes", &mut snapshot_disk_bytes)?;
        match parsed.last("--snapshot-dir") {
            Some(dir) => {
                let store = domino_engine::SnapshotStore::on_disk(dir)?
                    .with_disk_byte_budget(snapshot_disk_bytes);
                config.snapshots = Some(Arc::new(store));
            }
            None if snapshot_disk_bytes != 0 => {
                return Err("--snapshot-disk-bytes requires --snapshot-dir".to_string());
            }
            None => {}
        }
        Ok(config)
    }
}

/// The default `dominod` port.
pub const DEFAULT_PORT: u16 = 7171;

/// Threads in the router pool. Routing is cheap — admission, cache
/// probes, registry lookups; compute lives on the worker pool and every
/// wait lives on the pump — so a handful is plenty.
const HANDLER_THREADS: usize = 4;

/// How often the pump re-polls the registry for its parked waiters.
const PUMP_INTERVAL: Duration = Duration::from_millis(5);

/// Memoizes circuit resolution by source *content*: repeated submissions
/// of the same suite row or inline BLIF clone the parsed
/// [`Network`](domino_netlist::Network) instead of re-generating/-parsing
/// it — on the warm path that is most of the per-request CPU.
/// `BlifPath` sources are never memoized (the file can change under us),
/// and only successfully resolved sources enter the memo, so a hit is
/// always sound.
///
/// Bounded in **bytes**, not just entries: sources above
/// [`RESOLVE_MEMO_MAX_SOURCE_BYTES`] are never memoized, and the memo is
/// emptied once it holds [`RESOLVE_MEMO_CAP`] entries or
/// [`RESOLVE_MEMO_MAX_TOTAL_BYTES`] of source text (the parsed networks
/// scale with their sources) — a client cycling through large distinct
/// inline circuits cannot grow server memory past the budget.
#[derive(Debug, Default)]
struct ResolveMemo {
    map: Mutex<(HashMap<String, domino_netlist::Network>, usize)>,
}

/// Distinct sources kept by the resolve memo before it resets.
const RESOLVE_MEMO_CAP: usize = 256;

/// Largest single source the memo will retain (1 MiB — every suite
/// circuit is far below this; a one-off giant BLIF just re-parses).
const RESOLVE_MEMO_MAX_SOURCE_BYTES: usize = 1024 * 1024;

/// Total source bytes retained before the memo resets (16 MiB).
const RESOLVE_MEMO_MAX_TOTAL_BYTES: usize = 16 * 1024 * 1024;

impl ResolveMemo {
    fn memo_key(source: &CircuitSource) -> Option<String> {
        match source {
            CircuitSource::Suite(name) => Some(format!("suite\u{0}{name}")),
            CircuitSource::BlifInline(text) => Some(format!("blif\u{0}{text}")),
            CircuitSource::BlifPath(_) => None,
        }
    }

    fn resolve(&self, spec: JobSpec) -> Result<FlowJob, EngineError> {
        let key = match Self::memo_key(&spec.source) {
            Some(key) if key.len() <= RESOLVE_MEMO_MAX_SOURCE_BYTES => key,
            _ => return spec.resolve(),
        };
        if let Some(net) = self.map.lock().expect("memo lock").0.get(&key) {
            return Ok(FlowJob::new(spec, net.clone()));
        }
        let job = spec.resolve()?;
        let mut guard = self.map.lock().expect("memo lock");
        let (map, bytes) = &mut *guard;
        if map.len() >= RESOLVE_MEMO_CAP || *bytes + key.len() > RESOLVE_MEMO_MAX_TOTAL_BYTES {
            map.clear();
            *bytes = 0;
        }
        // Two racing resolvers of the same new source both reach here;
        // count the key's bytes only for the insert that actually adds an
        // entry, or the accounting drifts above the real total.
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
            *bytes += slot.key().len();
            slot.insert(job.network.clone());
        }
        Ok(job)
    }
}

/// A blocked observer the pump carries for a job: the connection is
/// parked with the reactor while one thread polls the registry for all
/// of them.
enum Waiter {
    /// `POST /jobs?wait=1` / `GET /jobs/:id/result?wait=1`: answer with
    /// the outcome bytes once the job is terminal.
    Outcome { responder: Responder, id: u64 },
    /// `GET /jobs/:id?wait=1`: answer with the status document once the
    /// job is terminal.
    Terminal { responder: Responder, id: u64 },
    /// `GET /jobs/:id/events`: feed fresh events as chunks; finish at
    /// the terminal event.
    Events {
        stream: StreamHandle,
        id: u64,
        next_seq: u64,
    },
}

/// The waiter pump's shared state.
struct Pump {
    waiters: Mutex<Vec<Waiter>>,
    stop: AtomicBool,
}

impl Pump {
    /// Parks `waiter` for the pump thread, unless the pump has already
    /// stopped — then the waiter comes back and the caller must service
    /// it itself. The stop check happens under the waiters lock, the
    /// same lock the pump's exit check holds, so a waiter can never
    /// slip in between the pump's last pass and its exit and sit
    /// unanswered until the reactor's force-close grace.
    fn park(&self, waiter: Waiter) -> Option<Waiter> {
        let mut guard = self.waiters.lock().expect("pump lock");
        if self.stop.load(Ordering::SeqCst) {
            return Some(waiter);
        }
        guard.push(waiter);
        None
    }
}

/// Parks a waiter with the pump; if the pump already stopped (the drain
/// has run every admitted job to a terminal state), services it inline
/// on this handler thread — it resolves on the first pass.
fn park_waiter(shared: &Arc<Shared>, waiter: Waiter) {
    let mut rejected = shared.pump.park(waiter);
    while let Some(waiter) = rejected.take() {
        rejected = service_waiter(shared, waiter);
        if rejected.is_some() {
            std::thread::sleep(PUMP_INTERVAL);
        }
    }
}

struct Shared {
    registry: Registry,
    resolve_memo: ResolveMemo,
    engine: FlowEngine,
    cache: Option<Arc<ResultCache>>,
    snapshots: Option<Arc<domino_engine::SnapshotStore>>,
    front: FrontHandle,
    pump: Pump,
    shutdown_signal: Mutex<bool>,
    shutdown_cond: Condvar,
    started: Instant,
    workers: usize,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.registry.drain();
        self.front.shutdown();
        *self.shutdown_signal.lock().expect("shutdown lock") = true;
        self.shutdown_cond.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.front.is_draining()
    }

    fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|cache| {
            let stats = cache.stats();
            CacheCounters {
                memory_hits: stats.memory_hits,
                disk_hits: stats.disk_hits,
                misses: stats.misses,
                stores: stats.stores,
                disk_entries: cache.disk_len() as u64,
                corrupt_evictions: stats.corrupt_evictions,
            }
        })
    }

    fn snapshot_counters(&self) -> Option<crate::protocol::SnapshotCounters> {
        self.snapshots.as_ref().map(|store| {
            let stats = store.stats();
            crate::protocol::SnapshotCounters {
                hits: stats.hits,
                misses: stats.misses,
                stores: stats.stores,
                kernel_builds: stats.kernel_builds,
                corrupt_evictions: stats.corrupt_evictions,
                disk_evictions: stats.disk_evictions,
                disk_entries: store.disk_len() as u64,
                disk_bytes: store.disk_bytes(),
            }
        })
    }

    fn metrics(&self) -> crate::protocol::MetricsReply {
        let mut reply = self.registry.metrics(
            self.workers as u64,
            self.started.elapsed().as_millis() as u64,
            self.cache_counters(),
        );
        reply.snapshot = self.snapshot_counters();
        reply.reactor = Some(self.front.counters());
        reply
    }
}

/// A running `dominod` instance: reactor front + worker pool + waiter
/// pump over one [`Registry`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor_handle: Option<JoinHandle<io::Result<()>>>,
    pump_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, spawns the reactor, the handler/worker pools and the pump,
    /// and returns.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the address cannot be bound or the reactor
    /// cannot be set up.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let front = HttpFront::bind(
            listener,
            FrontConfig {
                name: "dominod",
                idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
                max_requests: config.max_requests_per_connection.max(1),
                max_connections: config.max_connections.max(1),
                handler_threads: HANDLER_THREADS,
            },
        )?;

        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            registry: Registry::new(config.queue_capacity),
            resolve_memo: ResolveMemo::default(),
            engine: FlowEngine::new(EngineConfig {
                threads: 1,
                cache: config.cache.clone(),
                snapshots: config.snapshots.clone(),
            }),
            cache: config.cache,
            snapshots: config.snapshots,
            front: front.handle(),
            pump: Pump {
                waiters: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            },
            shutdown_signal: Mutex::new(false),
            shutdown_cond: Condvar::new(),
            started: Instant::now(),
            workers,
        });

        let reactor_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dominod-reactor".into())
                .spawn(move || {
                    front.run(Arc::new(move |request, responder| {
                        route(&shared, &request, responder);
                    }))
                })?
        };
        let pump_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dominod-pump".into())
                .spawn(move || pump_loop(&shared))?
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server {
            shared,
            addr,
            reactor_handle: Some(reactor_handle),
            pump_handle: Some(pump_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown without waiting (same effect as
    /// `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// A cloneable handle that can request this server's shutdown from
    /// another thread — the hook a signal watcher (SIGTERM/SIGINT) uses
    /// to turn a kill into a graceful drain.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown is requested (by [`Server::request_shutdown`]
    /// or `POST /shutdown`), then drains: joins the workers after the
    /// admitted queue has been fully executed, lets the pump answer every
    /// parked waiter, and joins the reactor once every connection is
    /// gone. The server can still be inspected (e.g. [`Server::metrics`])
    /// afterwards.
    pub fn wait(&mut self) {
        {
            let mut signalled = self.shared.shutdown_signal.lock().expect("shutdown lock");
            while !*signalled {
                signalled = self
                    .shared
                    .shutdown_cond
                    .wait(signalled)
                    .expect("shutdown lock");
            }
        }
        // Workers first: the drain guarantee (every admitted job reaches
        // a terminal state) is what bounds every parked waiter.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // Then the pump: with every job terminal, one pass answers every
        // remaining long-poll and finishes every event stream.
        self.shared.pump.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.pump_handle.take() {
            let _ = handle.join();
        }
        // Last the reactor: it exits once the answered connections have
        // flushed and closed (with a grace cutoff for dead peers).
        if let Some(handle) = self.reactor_handle.take() {
            let _ = handle.join();
        }
    }

    /// Convenience: request shutdown and wait for the drain to finish.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        self.wait();
    }

    /// An in-process metrics snapshot (same content as `GET /metrics`) —
    /// usable even after the drain, when the HTTP surface is gone.
    pub fn metrics(&self) -> crate::protocol::MetricsReply {
        self.shared.metrics()
    }
}

/// A detached shutdown trigger for a running [`Server`] (see
/// [`Server::shutdown_handle`]). Cloneable and `Send`: hand it to a
/// signal-watcher thread, keep the `Server` itself on the main thread
/// for [`Server::wait`].
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").finish()
    }
}

impl ShutdownHandle {
    /// Requests graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((id, job, token)) = shared.registry.claim() {
        // run_one executes inline on this worker thread (no per-job scope
        // spawn), so warm cache hits cost a lookup, not a thread.
        match shared.engine.run_one(&job, &token) {
            JobResult::Completed { outcome, cached } => {
                shared
                    .registry
                    .finish(id, outcome.to_json().serialize(), cached);
            }
            JobResult::Failed(e) => shared.registry.fail(id, e.to_string()),
            JobResult::Cancelled => shared.registry.mark_cancelled(id),
        }
    }
}

/// One thread, every waiter: polls the registry for each parked
/// long-poll and event stream, answering those whose jobs went terminal
/// and dropping those whose clients left. Exits once stopped *and*
/// empty — the drain terminates every job, so every waiter resolves.
fn pump_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Waiter> = {
            let mut guard = shared.pump.waiters.lock().expect("pump lock");
            std::mem::take(&mut *guard)
        };
        let mut still_parked = Vec::new();
        for waiter in batch {
            if let Some(waiter) = service_waiter(shared, waiter) {
                still_parked.push(waiter);
            }
        }
        // One critical section for both the emptiness and the stop
        // check: `park` holds the same lock while it tests `stop`, so
        // either a racing parker lands before this check (and is seen)
        // or it observes `stop` set and services its waiter inline.
        let done = {
            let mut guard = shared.pump.waiters.lock().expect("pump lock");
            guard.extend(still_parked);
            guard.is_empty() && shared.pump.stop.load(Ordering::SeqCst)
        };
        if done {
            return;
        }
        std::thread::sleep(PUMP_INTERVAL);
    }
}

/// Advances one waiter; returns it if it must stay parked.
fn service_waiter(shared: &Arc<Shared>, waiter: Waiter) -> Option<Waiter> {
    match waiter {
        Waiter::Outcome { responder, id } => {
            if !responder.is_live() {
                return None; // client hung up; drop the reply
            }
            match shared.registry.outcome_text(id) {
                None => {
                    not_found(responder, id);
                    None
                }
                Some((status, text, error)) if status.is_terminal() => {
                    respond_outcome(responder, status, text, error);
                    None
                }
                Some(_) => Some(Waiter::Outcome { responder, id }),
            }
        }
        Waiter::Terminal { responder, id } => {
            if !responder.is_live() {
                return None;
            }
            match shared.registry.status(id) {
                None => {
                    not_found(responder, id);
                    None
                }
                Some(reply) if reply.status.is_terminal() => {
                    responder.respond(200, &[], reply.to_json().serialize().as_bytes());
                    None
                }
                Some(_) => Some(Waiter::Terminal { responder, id }),
            }
        }
        Waiter::Events {
            mut stream,
            id,
            mut next_seq,
        } => {
            if !stream.is_live() {
                return None; // consumer gone mid-stream
            }
            match shared.registry.events_from(id, next_seq) {
                None => {
                    // The job fell out of retention mid-stream; end the
                    // stream cleanly rather than hold the client forever.
                    stream.finish();
                    None
                }
                Some((fresh, terminal)) => {
                    for event in &fresh {
                        let mut line = event.to_json().serialize();
                        line.push('\n');
                        stream.chunk(line.as_bytes());
                        next_seq = event.seq + 1;
                    }
                    if terminal {
                        stream.finish();
                        None
                    } else {
                        Some(Waiter::Events {
                            stream,
                            id,
                            next_seq,
                        })
                    }
                }
            }
        }
    }
}

/// Splits `/jobs/42[/tail]` into the id and the remainder.
fn job_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn route(shared: &Arc<Shared>, request: &Request, responder: Responder) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            let body = Json::obj(vec![
                ("status", Json::Str("ok".into())),
                (
                    "uptime_ms",
                    Json::Num(shared.started.elapsed().as_millis() as f64),
                ),
                ("draining", Json::Bool(shared.is_shutting_down())),
            ]);
            responder.respond(200, &[], body.serialize().as_bytes());
        }
        ("GET", "/metrics") => {
            let reply = shared.metrics();
            responder.respond(200, &[], reply.to_json().serialize().as_bytes());
        }
        ("POST", "/jobs") => handle_submit(shared, request, responder),
        ("POST", "/shutdown") => {
            let body = Json::obj(vec![("status", Json::Str("shutting-down".into()))]);
            responder.respond_close(200, &[], body.serialize().as_bytes());
            shared.begin_shutdown();
        }
        ("GET", _) if path.starts_with("/cache/peek/") => {
            handle_cache_peek(shared, &path["/cache/peek/".len()..], responder);
        }
        ("POST", _) if path.starts_with("/cache/fill/") => {
            handle_cache_fill(shared, request, &path["/cache/fill/".len()..], responder);
        }
        _ => match job_path(path) {
            Some((id, "")) if method == "GET" => handle_status(shared, request, id, responder),
            Some((id, "")) if method == "DELETE" => match shared.registry.cancel(id) {
                Some(reply) => {
                    responder.respond(200, &[], reply.to_json().serialize().as_bytes());
                }
                None => not_found(responder, id),
            },
            Some((id, "result")) if method == "GET" => {
                handle_result(shared, request, id, responder);
            }
            Some((id, "events")) if method == "GET" => handle_events(shared, id, responder),
            // A known sub-path with the wrong method is 405; an unknown
            // sub-path is 404 — don't misdiagnose a path typo as a method
            // error.
            Some((_, "" | "result" | "events")) => {
                error_reply(responder, 405, "method not allowed");
            }
            Some(_) | None => {
                error_reply(
                    responder,
                    404,
                    &format!("no such endpoint: {method} {path}"),
                );
            }
        },
    }
}

/// `GET /cache/peek/:key` — the read half of cache peering: answers with
/// the cached outcome's canonical bytes, or 404. The lookup is
/// count-silent ([`ResultCache::peek`]) so fleet-side probing does not
/// distort this node's hit/miss accounting.
fn handle_cache_peek(shared: &Arc<Shared>, key: &str, responder: Responder) {
    match shared.cache.as_ref().and_then(|cache| cache.peek(key)) {
        Some(outcome) => {
            responder.respond(200, &[], outcome.to_json().serialize().as_bytes());
        }
        None => error_reply(responder, 404, &format!("no cache entry: {key}")),
    }
}

/// `POST /cache/fill/:key` — the write half of cache peering: a peer (or
/// the gateway, relaying a peer's entry) hands this node an outcome it
/// computed, so the next submission for that key is answered warm here.
/// The body must be a complete serialized outcome whose own `key` field
/// matches the path — a guard against cross-wiring two jobs' results.
fn handle_cache_fill(shared: &Arc<Shared>, request: &Request, key: &str, responder: Responder) {
    let Some(cache) = &shared.cache else {
        return error_reply(responder, 404, "no cache configured");
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_reply(responder, 400, "body is not UTF-8");
    };
    let outcome = match domino_engine::FlowOutcome::from_json_text(text) {
        Ok(outcome) => outcome,
        Err(e) => return error_reply(responder, 400, &format!("invalid outcome: {e}")),
    };
    if outcome.key != key {
        return error_reply(
            responder,
            400,
            &format!(
                "outcome key '{}' does not match path key '{key}'",
                outcome.key
            ),
        );
    }
    cache.put(key, &outcome);
    let body = Json::obj(vec![("status", Json::Str("filled".into()))]);
    responder.respond(200, &[], body.serialize().as_bytes());
}

fn handle_submit(shared: &Arc<Shared>, request: &Request, responder: Responder) {
    if shared.is_shutting_down() {
        return error_reply(responder, 503, "server is draining for shutdown");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_reply(responder, 400, "body is not UTF-8");
    };
    let spec = match parse(text)
        .map_err(|e| e.to_string())
        .and_then(|v| JobSpec::from_json(&v).map_err(|e| e.to_string()))
    {
        Ok(spec) => spec,
        Err(e) => return error_reply(responder, 400, &format!("invalid job spec: {e}")),
    };
    let job = match shared.resolve_memo.resolve(spec) {
        Ok(job) => job,
        Err(e) => return error_reply(responder, 400, &format!("unresolvable job: {e}")),
    };
    // Admission-time cache check: a warm submission is answered right
    // here — no queue slot, no worker round trip, no parked waiter.
    // `probe` counts the hit but not a miss (the worker's own `get`
    // counts recomputations), so the /metrics accounting stays exact:
    // hits == cache-answered jobs, misses == flows actually recomputed.
    if let Some(cache) = &shared.cache {
        if let Some(mut outcome) = cache.probe(job.cache_key()) {
            outcome.name = job.spec.name.clone();
            return match shared
                .registry
                .admit_completed(&job, outcome.to_json().serialize())
            {
                Ok(reply) if request.wants_wait() => {
                    respond_with_outcome(shared, reply.id, responder);
                }
                // 200, not 202: the work is already done.
                Ok(reply) => {
                    responder.respond(200, &[], reply.to_json().serialize().as_bytes());
                }
                Err(_) => error_reply(responder, 503, "server is draining for shutdown"),
            };
        }
    }
    match shared.registry.submit(job) {
        // Synchronous mode: `POST /jobs?wait=1` parks the reply with the
        // pump until the job is terminal, then answers like
        // `GET /jobs/:id/result` — one round trip per job, holding no
        // thread while it waits. Never abandoned on shutdown: the drain
        // runs every admitted job to a terminal state, so the wait is
        // bounded and the client gets its outcome even mid-drain.
        Ok(reply) if request.wants_wait() => park_waiter(
            shared,
            Waiter::Outcome {
                responder,
                id: reply.id,
            },
        ),
        Ok(reply) => {
            responder.respond(202, &[], reply.to_json().serialize().as_bytes());
        }
        Err(AdmitError::Full { depth }) => {
            let body = ErrorReply::new(format!("queue full: {depth} jobs waiting"))
                .to_json()
                .serialize();
            responder.respond(429, &[("retry-after", "1")], body.as_bytes());
        }
        Err(AdmitError::Draining) => error_reply(responder, 503, "server is draining for shutdown"),
    }
}

fn handle_status(shared: &Arc<Shared>, request: &Request, id: u64, responder: Responder) {
    match shared.registry.status(id) {
        None => not_found(responder, id),
        Some(reply) if request.wants_wait() && !reply.status.is_terminal() => {
            park_waiter(shared, Waiter::Terminal { responder, id });
        }
        Some(reply) => {
            responder.respond(200, &[], reply.to_json().serialize().as_bytes());
        }
    }
}

fn handle_result(shared: &Arc<Shared>, request: &Request, id: u64, responder: Responder) {
    match shared.registry.outcome_text(id) {
        None => not_found(responder, id),
        Some((status, _, _)) if request.wants_wait() && !status.is_terminal() => {
            park_waiter(shared, Waiter::Outcome { responder, id });
        }
        Some((status, text, error)) if status.is_terminal() => {
            respond_outcome(responder, status, text, error);
        }
        // Unfinished without ?wait=1: the explicit 409 nudge.
        Some((status, _, _)) => respond_outcome(responder, status, None, None),
    }
}

/// Answers with the job's stored outcome bytes (the byte-identity path),
/// or the appropriate error for failed/cancelled/unfinished jobs.
fn respond_with_outcome(shared: &Arc<Shared>, id: u64, responder: Responder) {
    match shared.registry.outcome_text(id) {
        None => not_found(responder, id),
        Some((status, text, error)) => respond_outcome(responder, status, text, error),
    }
}

fn respond_outcome(
    responder: Responder,
    status: JobStatus,
    text: Option<String>,
    error: Option<String>,
) {
    match (status, text) {
        (JobStatus::Completed, Some(text)) => {
            // The engine's exact bytes: this is the byte-identity endpoint.
            responder.respond(200, &[], text.as_bytes());
        }
        (JobStatus::Failed, _) => error_reply(
            responder,
            502,
            &format!("job failed: {}", error.unwrap_or_default()),
        ),
        (JobStatus::Cancelled, _) => error_reply(responder, 409, "job was cancelled"),
        (status, _) => error_reply(
            responder,
            409,
            &format!("job not finished (status: {status}); use ?wait=1 to block"),
        ),
    }
}

fn handle_events(shared: &Arc<Shared>, id: u64, responder: Responder) {
    if shared.registry.status(id).is_none() {
        return not_found(responder, id);
    }
    // Chunked streams are `Connection: close` by construction: the
    // stream's end IS the connection's end. The pump feeds it — including
    // through a shutdown, since the drain terminates every admitted job.
    let stream = responder.begin_stream(200);
    park_waiter(
        shared,
        Waiter::Events {
            stream,
            id,
            next_seq: 0,
        },
    );
}

fn not_found(responder: Responder, id: u64) {
    error_reply(responder, 404, &format!("no such job: {id}"));
}

fn error_reply(responder: Responder, status: u16, message: &str) {
    let body = ErrorReply::new(message).to_json().serialize();
    responder.respond(status, &[], body.as_bytes());
}
