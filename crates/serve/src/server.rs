//! `dominod`'s core: the accept loop, the HTTP router, the worker pool
//! and graceful shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//! POST /jobs ──▶ parse JobSpec ──▶ resolve circuit ──▶ cache probe
//!                   (400)          (400; memoized)      │hit: 200, no queue
//!                                                       │miss
//!                                                       ▼ admission queue
//!                                                      (202 | 429+Retry-After)
//!                                                          │ FIFO
//!                                                          ▼
//!                                               worker: FlowEngine::run_one
//!                                               (shared ResultCache: get,
//!                                                run, atomic store)
//!                                                          │
//!          GET /jobs/:id ◀── status/outcome ◀── registry ◀─┘
//!          GET /jobs/:id/result   (the engine's exact outcome bytes)
//!          GET /jobs/:id/events   (chunked stream, one JSON line each)
//!          DELETE /jobs/:id       (cooperative cancel)
//! ```
//!
//! Determinism holds across the wire because the server stores and serves
//! the engine's serialized [`FlowOutcome`](domino_engine::FlowOutcome)
//! *verbatim*: for any spec, `GET /jobs/:id/result` is byte-identical to
//! the JSONL a local `dominoc run` emits, warm or cold cache, at any
//! worker or client count (pinned by `tests/server_integration.rs`).
//!
//! # Shutdown
//!
//! `POST /shutdown` (or [`Server::request_shutdown`]) flips the shutdown
//! flag: the accept loop closes, admissions turn into `503`, workers
//! drain every job already admitted and exit. The on-disk cache needs no
//! separate flush — every store is written (atomically) at completion
//! time — so a drained server can be killed with nothing in flight.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::collections::HashMap;

use domino_engine::json::{parse, Json};
use domino_engine::{
    CircuitSource, EngineConfig, EngineError, FlowEngine, FlowJob, JobResult, JobSpec, ResultCache,
};

use crate::http::{serve_connection, ConnectionPolicy, HttpConnection, Request, Served};
use crate::protocol::{CacheCounters, ErrorReply, JobStatus};
use crate::registry::{AdmitError, Registry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. `0` means one per available CPU.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Shared result cache; `None` disables caching.
    pub cache: Option<Arc<ResultCache>>,
    /// Milliseconds a kept-alive connection may idle between requests
    /// before the server closes it.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the server forces
    /// `Connection: close`.
    pub max_requests_per_connection: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: format!("127.0.0.1:{DEFAULT_PORT}"),
            workers: 0,
            queue_capacity: 64,
            cache: None,
            idle_timeout_ms: 10_000,
            max_requests_per_connection: 1024,
        }
    }
}

impl ServeConfig {
    /// Parses the server CLI flags (`--addr`, `--workers`, `--queue`,
    /// `--cache`, `--cache-mem-entries`, `--cache-disk-bytes`,
    /// `--idle-ms`) shared by `dominod` and `dominoc serve`, so the two
    /// entry points cannot drift.
    ///
    /// # Errors
    ///
    /// A rendered usage message for unknown flags, missing values,
    /// non-integer counts, a zero queue capacity, cache budgets without a
    /// cache, or an unusable cache directory.
    pub fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut config = ServeConfig::default();
        let mut cache_dir: Option<String> = None;
        let mut cache_mem_entries: usize = 0;
        let mut cache_disk_bytes: u64 = 0;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--addr" => config.addr = value("--addr")?,
                "--workers" => {
                    config.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?;
                }
                "--queue" => {
                    config.queue_capacity = value("--queue")?
                        .parse()
                        .map_err(|_| "--queue needs an integer".to_string())?;
                    if config.queue_capacity == 0 {
                        return Err("--queue must be at least 1".to_string());
                    }
                }
                "--cache" => cache_dir = Some(value("--cache")?),
                "--cache-mem-entries" => {
                    cache_mem_entries = value("--cache-mem-entries")?
                        .parse()
                        .map_err(|_| "--cache-mem-entries needs an integer".to_string())?;
                }
                "--cache-disk-bytes" => {
                    cache_disk_bytes = value("--cache-disk-bytes")?
                        .parse()
                        .map_err(|_| "--cache-disk-bytes needs an integer".to_string())?;
                }
                "--idle-ms" => {
                    config.idle_timeout_ms = value("--idle-ms")?
                        .parse()
                        .map_err(|_| "--idle-ms needs an integer".to_string())?;
                    if config.idle_timeout_ms == 0 {
                        return Err("--idle-ms must be at least 1".to_string());
                    }
                }
                other => return Err(format!("unknown server option '{other}'")),
            }
        }
        // The cache is built last so the budget flags work in any order
        // relative to `--cache`.
        match cache_dir {
            Some(dir) => {
                let cache = ResultCache::on_disk(&dir)
                    .map_err(|e| e.to_string())?
                    .with_memory_entry_budget(cache_mem_entries)
                    .with_disk_byte_budget(cache_disk_bytes);
                config.cache = Some(Arc::new(cache));
            }
            None if cache_mem_entries != 0 || cache_disk_bytes != 0 => {
                return Err("cache budget flags require --cache".to_string());
            }
            None => {}
        }
        Ok(config)
    }
}

/// The default `dominod` port.
pub const DEFAULT_PORT: u16 = 7171;

/// Memoizes circuit resolution by source *content*: repeated submissions
/// of the same suite row or inline BLIF clone the parsed
/// [`Network`](domino_netlist::Network) instead of re-generating/-parsing
/// it — on the warm path that is most of the per-request CPU.
/// `BlifPath` sources are never memoized (the file can change under us),
/// and only successfully resolved sources enter the memo, so a hit is
/// always sound.
///
/// Bounded in **bytes**, not just entries: sources above
/// [`RESOLVE_MEMO_MAX_SOURCE_BYTES`] are never memoized, and the memo is
/// emptied once it holds [`RESOLVE_MEMO_CAP`] entries or
/// [`RESOLVE_MEMO_MAX_TOTAL_BYTES`] of source text (the parsed networks
/// scale with their sources) — a client cycling through large distinct
/// inline circuits cannot grow server memory past the budget.
#[derive(Debug, Default)]
struct ResolveMemo {
    map: Mutex<(HashMap<String, domino_netlist::Network>, usize)>,
}

/// Distinct sources kept by the resolve memo before it resets.
const RESOLVE_MEMO_CAP: usize = 256;

/// Largest single source the memo will retain (1 MiB — every suite
/// circuit is far below this; a one-off giant BLIF just re-parses).
const RESOLVE_MEMO_MAX_SOURCE_BYTES: usize = 1024 * 1024;

/// Total source bytes retained before the memo resets (16 MiB).
const RESOLVE_MEMO_MAX_TOTAL_BYTES: usize = 16 * 1024 * 1024;

impl ResolveMemo {
    fn memo_key(source: &CircuitSource) -> Option<String> {
        match source {
            CircuitSource::Suite(name) => Some(format!("suite\u{0}{name}")),
            CircuitSource::BlifInline(text) => Some(format!("blif\u{0}{text}")),
            CircuitSource::BlifPath(_) => None,
        }
    }

    fn resolve(&self, spec: JobSpec) -> Result<FlowJob, EngineError> {
        let key = match Self::memo_key(&spec.source) {
            Some(key) if key.len() <= RESOLVE_MEMO_MAX_SOURCE_BYTES => key,
            _ => return spec.resolve(),
        };
        if let Some(net) = self.map.lock().expect("memo lock").0.get(&key) {
            return Ok(FlowJob::new(spec, net.clone()));
        }
        let job = spec.resolve()?;
        let mut guard = self.map.lock().expect("memo lock");
        let (map, bytes) = &mut *guard;
        if map.len() >= RESOLVE_MEMO_CAP || *bytes + key.len() > RESOLVE_MEMO_MAX_TOTAL_BYTES {
            map.clear();
            *bytes = 0;
        }
        // Two racing resolvers of the same new source both reach here;
        // count the key's bytes only for the insert that actually adds an
        // entry, or the accounting drifts above the real total.
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
            *bytes += slot.key().len();
            slot.insert(job.network.clone());
        }
        Ok(job)
    }
}

struct Shared {
    registry: Registry,
    resolve_memo: ResolveMemo,
    engine: FlowEngine,
    cache: Option<Arc<ResultCache>>,
    shutdown: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cond: Condvar,
    /// `true` once a shutdown wake-up connection reached the accept loop —
    /// joining the accept thread is only safe then (see [`Server::wait`]).
    accept_woken: AtomicBool,
    /// Connection handlers currently alive; the drain waits for them so a
    /// client blocked on `?wait=1` gets its response before exit.
    active_connections: std::sync::atomic::AtomicUsize,
    started: Instant,
    workers: usize,
    addr: SocketAddr,
    policy: ConnectionPolicy,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.registry.drain();
        // The accept loop blocks in `accept()`; a throwaway connection to
        // ourselves wakes it so it can observe the flag and exit. (The
        // standard no-dependency alternative — polling with a sleep — taxes
        // every real connection with up to one poll interval of latency,
        // which warm cache hits would feel.) An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so the wake
        // targets the loopback of the same family; a transient failure is
        // retried before giving up (wait() then refuses to join a possibly
        // still-blocked accept thread rather than hang).
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(if wake.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        for attempt in 0..3 {
            if TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok() {
                self.accept_woken.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(50 * (attempt + 1)));
        }
        *self.shutdown_signal.lock().expect("shutdown lock") = true;
        self.shutdown_cond.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|cache| {
            let stats = cache.stats();
            CacheCounters {
                memory_hits: stats.memory_hits,
                disk_hits: stats.disk_hits,
                misses: stats.misses,
                stores: stats.stores,
                disk_entries: cache.disk_len() as u64,
                corrupt_evictions: stats.corrupt_evictions,
            }
        })
    }
}

/// A running `dominod` instance: accept loop + worker pool over one
/// [`Registry`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the address cannot be bound.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            registry: Registry::new(config.queue_capacity),
            resolve_memo: ResolveMemo::default(),
            engine: FlowEngine::new(EngineConfig {
                threads: 1,
                cache: config.cache.clone(),
            }),
            cache: config.cache,
            shutdown: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cond: Condvar::new(),
            accept_woken: AtomicBool::new(false),
            active_connections: std::sync::atomic::AtomicUsize::new(0),
            started: Instant::now(),
            workers,
            addr,
            policy: ConnectionPolicy {
                idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
                max_requests: config.max_requests_per_connection.max(1),
            },
        });

        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown without waiting (same effect as
    /// `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// A cloneable handle that can request this server's shutdown from
    /// another thread — the hook a signal watcher (SIGTERM/SIGINT) uses
    /// to turn a kill into a graceful drain.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown is requested (by [`Server::request_shutdown`]
    /// or `POST /shutdown`), then drains: joins the accept loop and every
    /// worker after the admitted queue has been fully executed. The server
    /// can still be inspected (e.g. [`Server::metrics`]) afterwards.
    pub fn wait(&mut self) {
        {
            let mut signalled = self.shared.shutdown_signal.lock().expect("shutdown lock");
            while !*signalled {
                signalled = self
                    .shared
                    .shutdown_cond
                    .wait(signalled)
                    .expect("shutdown lock");
            }
        }
        if self.shared.accept_woken.load(Ordering::SeqCst) {
            if let Some(handle) = self.accept_handle.take() {
                let _ = handle.join();
            }
        } else {
            // The wake-up connection never got through (see
            // begin_shutdown): the accept thread may still be blocked and
            // joining it would hang forever. Leak it — the process is
            // exiting anyway, and in-process users get everything but the
            // port back.
            eprintln!("dominod: accept loop did not confirm shutdown; not joining it");
            self.accept_handle = None;
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // Let in-flight connection handlers (clients blocked on ?wait=1
        // for jobs the drain just finished) write their responses before
        // we return and the process can exit. Bounded: every wait path
        // terminates once its job is terminal, which the drain guarantees.
        let grace = Instant::now();
        while self
            .shared
            .active_connections
            .load(std::sync::atomic::Ordering::SeqCst)
            > 0
            && grace.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Convenience: request shutdown and wait for the drain to finish.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        self.wait();
    }

    /// An in-process metrics snapshot (same content as `GET /metrics`) —
    /// usable even after the drain, when the HTTP surface is gone.
    pub fn metrics(&self) -> crate::protocol::MetricsReply {
        self.shared.registry.metrics(
            self.shared.workers as u64,
            self.shared.started.elapsed().as_millis() as u64,
            self.shared.cache_counters(),
        )
    }
}

/// A detached shutdown trigger for a running [`Server`] (see
/// [`Server::shutdown_handle`]). Cloneable and `Send`: hand it to a
/// signal-watcher thread, keep the `Server` itself on the main thread
/// for [`Server::wait`].
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").finish()
    }
}

impl ShutdownHandle {
    /// Requests graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Checked *after* accept: begin_shutdown wakes a blocked
                // accept with a throwaway self-connection.
                if shared.is_shutting_down() {
                    return;
                }
                if domino_failpoint::should_fire("serve.http.accept") {
                    // Injected accept failure: the connection is dropped on
                    // the floor, as a SYN-flooded or fd-exhausted listener
                    // would — clients see a reset before any response byte.
                    drop(stream);
                    continue;
                }
                let shared = Arc::clone(shared);
                // Connection handlers are detached but counted
                // (active_connections): every response path is bounded —
                // long-polls and event streams end once their job is
                // terminal, which the drain guarantees — and wait() holds
                // the process for them so ?wait=1 clients get their bytes.
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(_) => {
                if shared.is_shutting_down() {
                    return;
                }
                // Transient accept failure (EMFILE, ECONNABORTED, ...):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((id, job, token)) = shared.registry.claim() {
        // run_one executes inline on this worker thread (no per-job scope
        // spawn), so warm cache hits cost a lookup, not a thread.
        match shared.engine.run_one(&job, &token) {
            JobResult::Completed { outcome, cached } => {
                shared
                    .registry
                    .finish(id, outcome.to_json().serialize(), cached);
            }
            JobResult::Failed(e) => shared.registry.fail(id, e.to_string()),
            JobResult::Cancelled => shared.registry.mark_cancelled(id),
        }
    }
}

/// Decrements the live-connection count when a handler exits, however it
/// exits (normal return, early return, panic).
struct ConnectionGuard<'a>(&'a Shared);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0
            .active_connections
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared
        .active_connections
        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let _guard = ConnectionGuard(shared);
    // A peer that stops draining its socket mid-response must not pin a
    // handler thread forever. (Read deadlines are managed per-request by
    // the connection state machine: the idle timeout between requests,
    // error-on-stall within one.)
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    serve_connection(stream, &shared.policy, |conn, request, keep_alive| {
        // A draining server answers the in-flight request, then closes —
        // keeping connections open would stall the drain.
        let keep_alive = keep_alive && !shared.is_shutting_down();
        route(conn, request, shared, keep_alive)
    });
}

/// Splits `/jobs/42[/tail]` into the id and the remainder.
fn job_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn route(
    conn: &mut HttpConnection,
    request: &Request,
    shared: &Arc<Shared>,
    ka: bool,
) -> io::Result<Served> {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            let body = Json::obj(vec![
                ("status", Json::Str("ok".into())),
                (
                    "uptime_ms",
                    Json::Num(shared.started.elapsed().as_millis() as f64),
                ),
                ("draining", Json::Bool(shared.is_shutting_down())),
            ]);
            conn.write_response(200, &[], body.serialize().as_bytes(), ka)?;
            Ok(alive(ka))
        }
        ("GET", "/metrics") => {
            let reply = shared.registry.metrics(
                shared.workers as u64,
                shared.started.elapsed().as_millis() as u64,
                shared.cache_counters(),
            );
            conn.write_response(200, &[], reply.to_json().serialize().as_bytes(), ka)?;
            Ok(alive(ka))
        }
        ("POST", "/jobs") => handle_submit(conn, request, shared, ka),
        ("POST", "/shutdown") => {
            let body = Json::obj(vec![("status", Json::Str("shutting-down".into()))]);
            conn.write_response(200, &[], body.serialize().as_bytes(), false)?;
            shared.begin_shutdown();
            Ok(Served::Close)
        }
        ("GET", _) if path.starts_with("/cache/peek/") => {
            handle_cache_peek(conn, shared, &path["/cache/peek/".len()..], ka)
        }
        ("POST", _) if path.starts_with("/cache/fill/") => {
            handle_cache_fill(conn, request, shared, &path["/cache/fill/".len()..], ka)
        }
        _ => match job_path(path) {
            Some((id, "")) if method == "GET" => handle_status(conn, request, shared, id, ka),
            Some((id, "")) if method == "DELETE" => match shared.registry.cancel(id) {
                Some(reply) => {
                    conn.write_response(200, &[], reply.to_json().serialize().as_bytes(), ka)?;
                    Ok(alive(ka))
                }
                None => not_found(conn, id, ka),
            },
            Some((id, "result")) if method == "GET" => handle_result(conn, request, shared, id, ka),
            Some((id, "events")) if method == "GET" => handle_events(conn, shared, id, ka),
            // A known sub-path with the wrong method is 405; an unknown
            // sub-path is 404 — don't misdiagnose a path typo as a method
            // error.
            Some((_, "" | "result" | "events")) => error_reply(conn, 405, "method not allowed", ka),
            Some(_) | None => {
                error_reply(conn, 404, &format!("no such endpoint: {method} {path}"), ka)
            }
        },
    }
}

/// The routine "response written with this keep-alive flag" outcome.
fn alive(ka: bool) -> Served {
    if ka {
        Served::KeepAlive
    } else {
        Served::Close
    }
}

/// `GET /cache/peek/:key` — the read half of cache peering: answers with
/// the cached outcome's canonical bytes, or 404. The lookup is
/// count-silent ([`ResultCache::peek`]) so fleet-side probing does not
/// distort this node's hit/miss accounting.
fn handle_cache_peek(
    conn: &mut HttpConnection,
    shared: &Arc<Shared>,
    key: &str,
    ka: bool,
) -> io::Result<Served> {
    match shared.cache.as_ref().and_then(|cache| cache.peek(key)) {
        Some(outcome) => {
            conn.write_response(200, &[], outcome.to_json().serialize().as_bytes(), ka)?;
            Ok(alive(ka))
        }
        None => error_reply(conn, 404, &format!("no cache entry: {key}"), ka),
    }
}

/// `POST /cache/fill/:key` — the write half of cache peering: a peer (or
/// the gateway, relaying a peer's entry) hands this node an outcome it
/// computed, so the next submission for that key is answered warm here.
/// The body must be a complete serialized outcome whose own `key` field
/// matches the path — a guard against cross-wiring two jobs' results.
fn handle_cache_fill(
    conn: &mut HttpConnection,
    request: &Request,
    shared: &Arc<Shared>,
    key: &str,
    ka: bool,
) -> io::Result<Served> {
    let Some(cache) = &shared.cache else {
        return error_reply(conn, 404, "no cache configured", ka);
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_reply(conn, 400, "body is not UTF-8", ka);
    };
    let outcome = match domino_engine::FlowOutcome::from_json_text(text) {
        Ok(outcome) => outcome,
        Err(e) => return error_reply(conn, 400, &format!("invalid outcome: {e}"), ka),
    };
    if outcome.key != key {
        return error_reply(
            conn,
            400,
            &format!(
                "outcome key '{}' does not match path key '{key}'",
                outcome.key
            ),
            ka,
        );
    }
    cache.put(key, &outcome);
    let body = Json::obj(vec![("status", Json::Str("filled".into()))]);
    conn.write_response(200, &[], body.serialize().as_bytes(), ka)?;
    Ok(alive(ka))
}

fn handle_submit(
    conn: &mut HttpConnection,
    request: &Request,
    shared: &Arc<Shared>,
    ka: bool,
) -> io::Result<Served> {
    if shared.is_shutting_down() {
        return error_reply(conn, 503, "server is draining for shutdown", ka);
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_reply(conn, 400, "body is not UTF-8", ka);
    };
    let spec = match parse(text)
        .map_err(|e| e.to_string())
        .and_then(|v| JobSpec::from_json(&v).map_err(|e| e.to_string()))
    {
        Ok(spec) => spec,
        Err(e) => return error_reply(conn, 400, &format!("invalid job spec: {e}"), ka),
    };
    let job = match shared.resolve_memo.resolve(spec) {
        Ok(job) => job,
        Err(e) => return error_reply(conn, 400, &format!("unresolvable job: {e}"), ka),
    };
    // Admission-time cache check: a warm submission is answered right
    // here — no queue slot, no worker round trip. `probe` counts the hit
    // but not a miss (the worker's own `get` counts recomputations), so
    // the /metrics accounting stays exact: hits == cache-answered jobs,
    // misses == flows actually recomputed.
    if let Some(cache) = &shared.cache {
        if let Some(mut outcome) = cache.probe(job.cache_key()) {
            outcome.name = job.spec.name.clone();
            return match shared
                .registry
                .admit_completed(&job, outcome.to_json().serialize())
            {
                Ok(reply) if request.wants_wait() => {
                    respond_with_outcome(conn, shared, reply.id, ka)
                }
                // 200, not 202: the work is already done.
                Ok(reply) => {
                    conn.write_response(200, &[], reply.to_json().serialize().as_bytes(), ka)?;
                    Ok(alive(ka))
                }
                Err(_) => error_reply(conn, 503, "server is draining for shutdown", ka),
            };
        }
    }
    match shared.registry.submit(job) {
        // Synchronous mode: `POST /jobs?wait=1` blocks until terminal and
        // answers like `GET /jobs/:id/result` — one round trip per job,
        // which is what the warm path of the load harness measures.
        Ok(reply) if request.wants_wait() => {
            // Never abandoned on shutdown: the drain runs every admitted
            // job to a terminal state, so this wait is bounded and the
            // client gets its outcome even mid-drain (wait() holds the
            // process for counted connections).
            shared.registry.wait_done(reply.id);
            respond_with_outcome(conn, shared, reply.id, ka)
        }
        Ok(reply) => {
            conn.write_response(202, &[], reply.to_json().serialize().as_bytes(), ka)?;
            Ok(alive(ka))
        }
        Err(AdmitError::Full { depth }) => {
            let body = ErrorReply::new(format!("queue full: {depth} jobs waiting"))
                .to_json()
                .serialize();
            conn.write_response(429, &[("retry-after", "1")], body.as_bytes(), ka)?;
            Ok(alive(ka))
        }
        Err(AdmitError::Draining) => error_reply(conn, 503, "server is draining for shutdown", ka),
    }
}

fn handle_status(
    conn: &mut HttpConnection,
    request: &Request,
    shared: &Arc<Shared>,
    id: u64,
    ka: bool,
) -> io::Result<Served> {
    let reply = if request.wants_wait() {
        shared.registry.wait_terminal(id)
    } else {
        shared.registry.status(id)
    };
    match reply {
        Some(reply) => {
            conn.write_response(200, &[], reply.to_json().serialize().as_bytes(), ka)?;
            Ok(alive(ka))
        }
        None => not_found(conn, id, ka),
    }
}

fn handle_result(
    conn: &mut HttpConnection,
    request: &Request,
    shared: &Arc<Shared>,
    id: u64,
    ka: bool,
) -> io::Result<Served> {
    if request.wants_wait() && !shared.registry.wait_done(id) {
        return not_found(conn, id, ka);
    }
    respond_with_outcome(conn, shared, id, ka)
}

/// Answers with the job's stored outcome bytes (the byte-identity path),
/// or the appropriate error for failed/cancelled/unfinished jobs.
fn respond_with_outcome(
    conn: &mut HttpConnection,
    shared: &Arc<Shared>,
    id: u64,
    ka: bool,
) -> io::Result<Served> {
    match shared.registry.outcome_text(id) {
        None => not_found(conn, id, ka),
        Some((JobStatus::Completed, Some(text), _)) => {
            // The engine's exact bytes: this is the byte-identity endpoint.
            conn.write_response(200, &[], text.as_bytes(), ka)?;
            Ok(alive(ka))
        }
        Some((JobStatus::Failed, _, error)) => error_reply(
            conn,
            502,
            &format!("job failed: {}", error.unwrap_or_default()),
            ka,
        ),
        Some((JobStatus::Cancelled, _, _)) => error_reply(conn, 409, "job was cancelled", ka),
        Some((status, _, _)) => error_reply(
            conn,
            409,
            &format!("job not finished (status: {status}); use ?wait=1 to block"),
            ka,
        ),
    }
}

fn handle_events(
    conn: &mut HttpConnection,
    shared: &Arc<Shared>,
    id: u64,
    ka: bool,
) -> io::Result<Served> {
    if shared.registry.status(id).is_none() {
        return not_found(conn, id, ka);
    }
    // Chunked streams are `Connection: close` by construction: the
    // stream's end IS the connection's end.
    let mut writer = conn.begin_chunked(200)?;
    let mut next_seq = 0u64;
    // The stream always ends with the job's terminal event — including
    // through a shutdown, since the drain terminates every admitted job.
    while let Some((fresh, terminal)) = shared.registry.wait_events(id, next_seq) {
        for event in &fresh {
            let mut line = event.to_json().serialize();
            line.push('\n');
            writer.chunk(line.as_bytes())?;
            next_seq = event.seq + 1;
        }
        if terminal {
            break;
        }
    }
    writer.finish()?;
    Ok(Served::Close)
}

fn not_found(conn: &mut HttpConnection, id: u64, ka: bool) -> io::Result<Served> {
    error_reply(conn, 404, &format!("no such job: {id}"), ka)
}

fn error_reply(
    conn: &mut HttpConnection,
    status: u16,
    message: &str,
    ka: bool,
) -> io::Result<Served> {
    let body = ErrorReply::new(message).to_json().serialize();
    conn.write_response(status, &[], body.as_bytes(), ka)?;
    Ok(alive(ka))
}
