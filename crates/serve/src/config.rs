//! Shared CLI flag parsing for `dominod` and `dominogw`.
//!
//! Both binaries grew hand-rolled `while let Some(arg) = iter.next()`
//! loops with duplicated value/integer/bounds handling, and every new
//! flag had to be added (and help-texted) twice. This module replaces
//! them with a declarative [`ArgTable`]: each flag is declared once —
//! name, metavar, help line — and both the parser and the generated
//! `--help` options block come from the same declaration, so the two
//! binaries' flag surfaces and error text cannot drift.
//!
//! The connection-limit flags shared by both servers (`--idle-ms`,
//! `--max-requests`, `--max-connections`) are declared and applied by
//! [`connection_flags`] / [`apply_connection_flags`] in one place.

/// One declared flag: `--name <metavar>  help`.
#[derive(Debug, Clone, Copy)]
struct FlagSpec {
    name: &'static str,
    metavar: &'static str,
    help: &'static str,
    /// Documented in `--help` but not accepted by [`ArgTable::parse`] —
    /// for flags consumed earlier (the failpoint flags are stripped by
    /// `domino_failpoint::take_cli_args` before config parsing).
    doc_only: bool,
}

/// A declarative flag table: declare flags once, then [`ArgTable::parse`]
/// raw args into a [`ParsedArgs`] bag and render the aligned `--help`
/// options block with [`ArgTable::options_help`].
#[derive(Debug, Clone)]
pub struct ArgTable {
    context: &'static str,
    flags: Vec<FlagSpec>,
}

impl ArgTable {
    /// An empty table; `context` names the binary in error text
    /// (`unknown server option '--x'`).
    pub fn new(context: &'static str) -> ArgTable {
        ArgTable {
            context,
            flags: Vec::new(),
        }
    }

    /// Declares one value-taking flag.
    #[must_use]
    pub fn flag(mut self, name: &'static str, metavar: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec {
            name,
            metavar,
            help,
            doc_only: false,
        });
        self
    }

    /// Declares a help-only entry: rendered in the options block, but
    /// rejected by the parser (it is consumed before config parsing).
    #[must_use]
    pub fn doc(mut self, name: &'static str, metavar: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec {
            name,
            metavar,
            help,
            doc_only: true,
        });
        self
    }

    /// Parses `args` against the table. Every flag takes exactly one
    /// value; repeated flags accumulate in declaration order.
    ///
    /// # Errors
    ///
    /// `"{flag} needs a value"` for a flag at the end of the args,
    /// `"unknown {context} option '{arg}'"` for anything undeclared.
    pub fn parse(&self, args: &[String]) -> Result<ParsedArgs, String> {
        let mut values: Vec<(&'static str, String)> = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(spec) = self
                .flags
                .iter()
                .find(|f| !f.doc_only && f.name == arg.as_str())
            else {
                return Err(format!("unknown {} option '{arg}'", self.context));
            };
            let value = iter
                .next()
                .cloned()
                .ok_or_else(|| format!("{} needs a value", spec.name))?;
            values.push((spec.name, value));
        }
        Ok(ParsedArgs { values })
    }

    /// The aligned options block for `--help` (no trailing newline).
    /// Multi-line help strings continue at the help column.
    pub fn options_help(&self) -> String {
        let width = self
            .flags
            .iter()
            .map(|f| f.name.len() + 1 + f.metavar.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for f in &self.flags {
            for (i, line) in f.help.lines().enumerate() {
                if i == 0 {
                    let head = format!("{} {}", f.name, f.metavar);
                    out.push_str(&format!("  {head:width$}  {line}\n"));
                } else {
                    out.push_str(&format!("  {:width$}  {line}\n", ""));
                }
            }
        }
        out.pop();
        out
    }
}

/// The values [`ArgTable::parse`] extracted, with typed accessors that
/// keep error text consistent across both binaries.
#[derive(Debug)]
pub struct ParsedArgs {
    values: Vec<(&'static str, String)>,
}

impl ParsedArgs {
    /// The last occurrence of `name` (flags repeat; last wins), if any.
    pub fn last(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of `name`, in order (for repeatable flags like
    /// `--backend`).
    pub fn all(&self, name: &str) -> Vec<String> {
        self.values
            .iter()
            .filter(|(k, _)| *k == name)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Overwrites `target` with the flag's value when present.
    pub fn set_string(&self, name: &str, target: &mut String) {
        if let Some(v) = self.last(name) {
            *target = v.to_string();
        }
    }

    /// Parses the flag's value as an integer when present.
    ///
    /// # Errors
    ///
    /// `"{name} needs an integer"` when the value does not parse.
    pub fn integer<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.last(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} needs an integer")),
        }
    }

    /// Overwrites `target` with the flag's integer value when present.
    ///
    /// # Errors
    ///
    /// `"{name} needs an integer"` when the value does not parse.
    pub fn set_integer<T: std::str::FromStr>(
        &self,
        name: &str,
        target: &mut T,
    ) -> Result<(), String> {
        if let Some(v) = self.integer(name)? {
            *target = v;
        }
        Ok(())
    }

    /// Like [`ParsedArgs::set_integer`], but rejects zero — for limits
    /// where 0 would mean "never" by accident.
    ///
    /// # Errors
    ///
    /// `"{name} needs an integer"` / `"{name} must be at least 1"`.
    pub fn set_integer_at_least_one<T: std::str::FromStr + PartialEq + From<u8>>(
        &self,
        name: &str,
        target: &mut T,
    ) -> Result<(), String> {
        if let Some(v) = self.integer::<T>(name)? {
            if v == T::from(0u8) {
                return Err(format!("{name} must be at least 1"));
            }
            *target = v;
        }
        Ok(())
    }
}

/// Default cap on concurrently open connections per server (the reactor
/// answers accepts beyond it with `503` and an immediate close).
pub const DEFAULT_MAX_CONNECTIONS: usize = 10_240;

/// Declares the connection-limit flags shared by `dominod` and
/// `dominogw` — one declaration, both binaries.
#[must_use]
pub fn connection_flags(table: ArgTable) -> ArgTable {
    table
        .flag("--idle-ms", "<n>", "per-connection idle timeout [10000]")
        .flag(
            "--max-requests",
            "<n>",
            "requests per connection before close [1024]",
        )
        .flag(
            "--max-connections",
            "<n>",
            "open connections before 503 [10240]",
        )
}

/// Applies the [`connection_flags`] values onto a config's fields.
///
/// # Errors
///
/// The shared integer/bounds error text (see [`ParsedArgs`]).
pub fn apply_connection_flags(
    parsed: &ParsedArgs,
    idle_timeout_ms: &mut u64,
    max_requests_per_connection: &mut u32,
    max_connections: &mut usize,
) -> Result<(), String> {
    parsed.set_integer_at_least_one("--idle-ms", idle_timeout_ms)?;
    parsed.set_integer("--max-requests", max_requests_per_connection)?;
    parsed.set_integer_at_least_one("--max-connections", max_connections)?;
    Ok(())
}

/// Declares the failpoint flags as help-only entries (they are consumed
/// by `domino_failpoint::take_cli_args` before config parsing).
#[must_use]
pub fn failpoint_docs(table: ArgTable) -> ArgTable {
    table
        .doc(
            "--failpoints",
            "<spec>",
            "fault-injection schedule (site=mode,...; also via\nDOMINO_FAILPOINTS), modes off|once|every(n)|after(n)",
        )
        .doc(
            "--failpoint-seed",
            "<n>",
            "failpoint schedule seed (also DOMINO_FAILPOINT_SEED) [0]",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_collects_repeats_and_rejects_unknown() {
        let table = ArgTable::new("test")
            .flag("--addr", "<host:port>", "bind")
            .flag("--backend", "<host:port>", "backend");
        let parsed = table
            .parse(&args(&["--backend", "a", "--addr", "x", "--backend", "b"]))
            .expect("valid");
        assert_eq!(parsed.last("--addr"), Some("x"));
        assert_eq!(parsed.all("--backend"), vec!["a", "b"]);

        let err = table.parse(&args(&["--nope"])).unwrap_err();
        assert_eq!(err, "unknown test option '--nope'");
        let err = table.parse(&args(&["--addr"])).unwrap_err();
        assert_eq!(err, "--addr needs a value");
    }

    #[test]
    fn typed_accessors_share_error_text() {
        let table = ArgTable::new("test").flag("--n", "<n>", "count");
        let parsed = table.parse(&args(&["--n", "xyz"])).expect("parses");
        assert_eq!(
            parsed.integer::<u64>("--n").unwrap_err(),
            "--n needs an integer"
        );
        let parsed = table.parse(&args(&["--n", "0"])).expect("parses");
        let mut target: u64 = 7;
        assert_eq!(
            parsed
                .set_integer_at_least_one("--n", &mut target)
                .unwrap_err(),
            "--n must be at least 1"
        );
        assert_eq!(target, 7, "rejected value leaves the default");
        let parsed = table.parse(&args(&["--n", "5"])).expect("parses");
        parsed
            .set_integer_at_least_one("--n", &mut target)
            .expect("ok");
        assert_eq!(target, 5);
    }

    #[test]
    fn last_occurrence_wins() {
        let table = ArgTable::new("test").flag("--addr", "<a>", "bind");
        let parsed = table
            .parse(&args(&["--addr", "first", "--addr", "second"]))
            .expect("valid");
        assert_eq!(parsed.last("--addr"), Some("second"));
    }

    #[test]
    fn options_help_aligns_and_wraps() {
        let table = failpoint_docs(connection_flags(ArgTable::new("test")));
        let help = table.options_help();
        assert!(help.contains("--idle-ms <n>"));
        assert!(help.contains("--max-connections <n>"));
        assert!(help.contains("--failpoints <spec>"));
        // The failpoint continuation line is indented to the help column.
        assert!(help
            .lines()
            .any(|l| l.trim_start().starts_with("DOMINO_FAILPOINTS") && l.starts_with("     ")));
        // Doc-only flags are rejected by the parser.
        assert!(table.parse(&args(&["--failpoints", "x"])).is_err());
    }
}
