use std::fmt;

use domino_netlist::NetlistError;
use domino_phase::PhaseError;

/// Errors from job resolution, execution or the cache.
#[derive(Debug)]
pub enum EngineError {
    /// A malformed or inconsistent job specification.
    Spec(String),
    /// Filesystem trouble (BLIF paths, disk cache).
    Io(String),
    /// The circuit failed to parse or validate.
    Netlist(NetlistError),
    /// The synthesis flow itself failed.
    Flow(PhaseError),
    /// The batch was cancelled before this job ran.
    Cancelled,
    /// The flow panicked mid-run; the worker contained it and the rest of
    /// the batch continued.
    Panicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            EngineError::Io(msg) => write!(f, "i/o error: {msg}"),
            EngineError::Netlist(e) => write!(f, "netlist error: {e}"),
            EngineError::Flow(e) => write!(f, "flow error: {e}"),
            EngineError::Cancelled => write!(f, "job cancelled"),
            EngineError::Panicked(msg) => write!(f, "flow panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Netlist(e) => Some(e),
            EngineError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for EngineError {
    fn from(e: NetlistError) -> Self {
        EngineError::Netlist(e)
    }
}

impl From<PhaseError> for EngineError {
    fn from(e: PhaseError) -> Self {
        EngineError::Flow(e)
    }
}
