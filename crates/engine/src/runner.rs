//! One-job execution: the full parse → probabilities → search → synthesis →
//! techmap → (sizing) → simulation pipeline, lifted out of the experiment
//! binaries into a reusable function.
//!
//! [`run_job`] is deterministic: every random stream in the flow (search
//! ordering, vector simulation) is seeded from the [`JobSpec`], so the same
//! job produces the same [`FlowOutcome`] on any thread of any run — the
//! property the engine's parallel-equivalence tests pin down.

use domino_phase::flow::{
    minimize_area_with_cancel, minimize_area_with_probabilities, minimize_power_with_cancel,
    minimize_power_with_probabilities, FlowReport,
};
use domino_phase::power::PowerModel;
use domino_phase::prob::{compute_probabilities_with_bdds, NodeProbabilities};
use domino_phase::PhaseError;
use domino_sim::{measure_power, SimConfig};
use domino_store::{SnapshotStore, WarmSnapshot};
use domino_techmap::{map, size_for_timing, sta, SizingConfig};

use crate::error::EngineError;
use crate::job::{
    assignment_string, snapshot_key, BddKernelStats, FlowJob, FlowOutcome, ObjectiveResult,
    ReorderInfo, RunObjective,
};

/// Runs one side (MA when `area`, else MP) of a job through mapping,
/// optional sizing and simulation.
///
/// When the spec is timed, the clock target is `clock_ps` if given
/// (compare runs derive it from the MA probe) or this netlist's own unsized
/// delay times the timing fraction.
///
/// # Errors
///
/// Propagates flow errors ([`EngineError::Flow`]) and PI-profile mismatches
/// ([`EngineError::Spec`]).
pub fn run_objective(
    job: &FlowJob,
    area: bool,
    clock_ps: Option<f64>,
) -> Result<ObjectiveResult, EngineError> {
    run_objective_with_cancel(job, area, clock_ps, &|| false)
}

/// [`run_objective`] with a cooperative cancellation check threaded into
/// the flow's stage boundaries (probabilities → search → synthesis) and
/// checked once more before the simulation stage — the two places a job
/// spends nearly all of its time.
///
/// # Errors
///
/// [`EngineError::Cancelled`] when `is_cancelled` reports `true` at a
/// boundary, plus everything [`run_objective`] can return.
pub fn run_objective_with_cancel(
    job: &FlowJob,
    area: bool,
    clock_ps: Option<f64>,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<ObjectiveResult, EngineError> {
    run_objective_snapshotted(job, area, clock_ps, None, is_cancelled)
}

/// Produces this job's probability stage, warm or cold. A servable
/// snapshot (full verification happens inside [`SnapshotStore::load`])
/// skips BDD construction and probability convergence entirely — the
/// loaded state is [rehydrated](NodeProbabilities::rehydrate) with only
/// pure graph work (the sequential partition recompute). Otherwise the
/// kernel runs cold, the build is counted, and the warm state is persisted
/// for the next process.
///
/// Byte-identity of warm outcomes: the snapshot carries the cold build's
/// kernel statistics and reorder outcome verbatim (a deserialized manager
/// has zero traffic counters), so a report assembled from a warm load is
/// indistinguishable from the cold run that produced the snapshot.
fn warm_probabilities(
    job: &FlowJob,
    pi: &[f64],
    store: &SnapshotStore,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<NodeProbabilities, PhaseError> {
    if is_cancelled() {
        return Err(PhaseError::Cancelled);
    }
    let prob = &job.spec.flow.probability;
    let key = snapshot_key(&job.network, prob, pi);
    if let Some(warm) = store.load(&key, job.network.len()) {
        return Ok(NodeProbabilities::rehydrate(
            &job.network,
            prob,
            warm.probs,
            warm.bdd_nodes,
            warm.bdd_stats,
            warm.reorder,
        ));
    }
    store.note_kernel_build();
    let (probabilities, mut bdds) = compute_probabilities_with_bdds(&job.network, pi, prob)?;
    // Compact to the postorder file layout before storing, so the arena a
    // later load rebuilds is the arena this process would have had — and
    // probability sweeps over the loaded copy walk memory in DFS order.
    bdds.remap_compact();
    store.store(
        &key,
        &WarmSnapshot {
            bdds,
            probs: probabilities.as_slice().to_vec(),
            bdd_nodes: probabilities.bdd_node_count(),
            bdd_stats: probabilities.bdd_stats().copied(),
            reorder: probabilities.reorder_outcome().cloned(),
        },
    );
    Ok(probabilities)
}

/// [`run_objective_with_cancel`] with an optional [`SnapshotStore`]: when
/// given, the probability stage loads persisted warm state instead of
/// rebuilding it (and persists it after a cold build). `None` is the exact
/// legacy path.
///
/// # Errors
///
/// Same as [`run_objective_with_cancel`].
pub fn run_objective_snapshotted(
    job: &FlowJob,
    area: bool,
    clock_ps: Option<f64>,
    snapshots: Option<&SnapshotStore>,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<ObjectiveResult, EngineError> {
    let spec = &job.spec;
    let pi = spec.pi.expand(&job.network)?;
    let flow = if area {
        spec.flow.clone()
    } else {
        let mut flow = spec.flow.clone();
        if let Some(penalty) = spec.mp_and_penalty {
            flow.power.model = PowerModel::with_and_penalty(penalty);
        }
        flow
    };
    let flow_ran = match snapshots {
        None if area => minimize_area_with_cancel(&job.network, &pi, &flow, is_cancelled),
        None => minimize_power_with_cancel(&job.network, &pi, &flow, is_cancelled),
        // The MP penalty only changes the power model, never the
        // probability stage, so MA and MP (and the timed probe) all share
        // one snapshot under the same key.
        Some(store) => warm_probabilities(job, &pi, store, is_cancelled).and_then(|prob| {
            if area {
                minimize_area_with_probabilities(&job.network, prob, &flow, is_cancelled)
            } else {
                minimize_power_with_probabilities(&job.network, prob, &flow, is_cancelled)
            }
        }),
    };
    let report: FlowReport = flow_ran.map_err(|e| match e {
        PhaseError::Cancelled => EngineError::Cancelled,
        other => EngineError::Flow(other),
    })?;
    // The search → sim boundary: simulation is the other dominant stage,
    // so a cancel raised during the search is honored before paying it.
    if is_cancelled() {
        return Err(EngineError::Cancelled);
    }
    let mut mapped = map(&report.domino, &spec.library);
    let mut timing_met = true;
    let timing = sta(&mapped, &spec.library);
    let mut worst = timing.worst_arrival_ps;
    if let Some(fraction) = spec.timing_fraction {
        let target = clock_ps.unwrap_or(worst * fraction);
        let sizing = size_for_timing(
            &mut mapped,
            &spec.library,
            &SizingConfig {
                clock_period_ps: Some(target),
                ..SizingConfig::default()
            },
        );
        worst = sizing.timing.worst_arrival_ps;
        timing_met = sizing.met;
    }
    let power = measure_power(&mapped, &spec.library, &pi, &spec.sim);
    let bdd = report
        .probabilities
        .bdd_stats()
        .map(|stats| BddKernelStats::from_manager(stats, report.probabilities.bdd_node_count()))
        .unwrap_or_default()
        .with_reorder(report.probabilities.reorder_outcome().map(|o| ReorderInfo {
            mode: spec.flow.probability.reorder,
            swaps: o.swaps,
            nodes_before: o.nodes_before,
            final_order: o.final_order.clone(),
        }));
    Ok(ObjectiveResult {
        size: mapped.effective_cell_count(),
        cap_ma: power.cap_ma,
        short_circuit_ma: power.short_circuit_ma,
        leakage_ma: power.leakage_ma,
        estimated_switching: report.power.total(),
        worst_arrival_ps: worst,
        timing_met,
        evaluations: report.outcome.evaluations,
        commits: report.outcome.commits,
        assignment: assignment_string(&report.assignment),
        bdd,
        sim: power.stats,
    })
}

/// Derives the common clock target for a timed compare run: the MA
/// netlist's unsized worst arrival times the timing fraction, found with a
/// short probe simulation (only timing is needed from it).
///
/// # Errors
///
/// Propagates flow errors from the probe run.
pub fn derive_clock_ps(job: &FlowJob) -> Result<Option<f64>, EngineError> {
    derive_clock_ps_with_cancel(job, &|| false)
}

/// [`derive_clock_ps`] with the probe run's stage boundaries checking the
/// given cancellation flag.
///
/// # Errors
///
/// Same as [`derive_clock_ps`], plus [`EngineError::Cancelled`].
pub fn derive_clock_ps_with_cancel(
    job: &FlowJob,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<Option<f64>, EngineError> {
    derive_clock_ps_snapshotted(job, None, is_cancelled)
}

/// [`derive_clock_ps_with_cancel`] with an optional [`SnapshotStore`]
/// threaded into the probe run. The probe's probability configuration is
/// the job's own, so a cold probe warms the very snapshot the timed sides
/// load.
///
/// # Errors
///
/// Same as [`derive_clock_ps_with_cancel`].
pub fn derive_clock_ps_snapshotted(
    job: &FlowJob,
    snapshots: Option<&SnapshotStore>,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<Option<f64>, EngineError> {
    let Some(fraction) = job.spec.timing_fraction else {
        return Ok(None);
    };
    let mut probe_spec = job.spec.clone();
    probe_spec.timing_fraction = None;
    probe_spec.sim = SimConfig {
        cycles: 16,
        adaptive_tol_ppm: 0,
        ..probe_spec.sim
    };
    let probe_job = FlowJob::new(probe_spec, job.network.clone());
    let probe = run_objective_snapshotted(&probe_job, true, None, snapshots, is_cancelled)?;
    Ok(Some(probe.worst_arrival_ps * fraction))
}

/// Executes one job start to finish according to its objective.
///
/// `Compare` runs MA first (deriving the shared clock target when timed,
/// exactly like the paper's Table 2 methodology), then MP under the same
/// clock.
///
/// # Errors
///
/// Propagates [`EngineError`] from either side.
pub fn run_job(job: &FlowJob) -> Result<FlowOutcome, EngineError> {
    run_job_with_cancel(job, &|| false)
}

/// [`run_job`] with a cooperative cancellation check threaded through
/// every stage boundary of every objective side, plus between the MA and
/// MP sides of a compare run. `DELETE /jobs/:id` on a running `dominod`
/// job rides this path: cancellation latency is bounded by the longest
/// single stage, not the whole flow.
///
/// # Errors
///
/// [`EngineError::Cancelled`] when `is_cancelled` reports `true` at a
/// boundary, plus everything [`run_job`] can return.
pub fn run_job_with_cancel(
    job: &FlowJob,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowOutcome, EngineError> {
    run_job_snapshotted(job, None, is_cancelled)
}

/// [`run_job_with_cancel`] with an optional [`SnapshotStore`] threaded
/// into every objective side (and the timed probe). This is `dominod`'s
/// execution path when `--snapshot-dir` is set: a restarted server's first
/// request loads the persisted warm state and performs zero BDD or
/// probability recompute.
///
/// # Errors
///
/// Same as [`run_job_with_cancel`].
pub fn run_job_snapshotted(
    job: &FlowJob,
    snapshots: Option<&SnapshotStore>,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowOutcome, EngineError> {
    job.network.validate()?;
    let objective = |area: bool, clock: Option<f64>| -> Result<ObjectiveResult, EngineError> {
        run_objective_snapshotted(job, area, clock, snapshots, is_cancelled)
    };
    let (ma, mp, clock_ps) = match job.spec.objective {
        RunObjective::MinArea => (Some(objective(true, None)?), None, None),
        RunObjective::MinPower => (None, Some(objective(false, None)?), None),
        RunObjective::Compare => {
            let clock_ps = derive_clock_ps_snapshotted(job, snapshots, is_cancelled)?;
            let ma = objective(true, clock_ps)?;
            // The MA → MP boundary of a compare run.
            if is_cancelled() {
                return Err(EngineError::Cancelled);
            }
            let mp = objective(false, clock_ps)?;
            (Some(ma), Some(mp), clock_ps)
        }
    };
    Ok(FlowOutcome {
        name: job.spec.name.clone(),
        key: job.cache_key().to_string(),
        pis: job.network.inputs().len(),
        pos: job.network.outputs().len(),
        ma,
        mp,
        clock_ps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, PiSpec};
    use domino_netlist::Network;

    fn fig5_job(objective: RunObjective) -> FlowJob {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        let mut spec = JobSpec::for_network("fig5", &net);
        spec.objective = objective;
        spec.pi = PiSpec::Uniform(0.9);
        FlowJob::new(spec, net)
    }

    #[test]
    fn compare_reproduces_the_paper_claim() {
        let outcome = run_job(&fig5_job(RunObjective::Compare)).unwrap();
        let (ma, mp) = (outcome.ma.unwrap(), outcome.mp.unwrap());
        // At p = 0.9 the MP assignment (f-, g+) beats MA on switching.
        assert!(mp.estimated_switching < ma.estimated_switching);
        assert_eq!(mp.assignment, "-+");
        assert!(outcome.clock_ps.is_none());
    }

    #[test]
    fn single_objective_runs_one_side() {
        let area = run_job(&fig5_job(RunObjective::MinArea)).unwrap();
        assert!(area.ma.is_some() && area.mp.is_none());
        let power = run_job(&fig5_job(RunObjective::MinPower)).unwrap();
        assert!(power.ma.is_none() && power.mp.is_some());
    }

    #[test]
    fn run_job_is_deterministic() {
        let a = run_job(&fig5_job(RunObjective::Compare)).unwrap();
        let b = run_job(&fig5_job(RunObjective::Compare)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().serialize(), b.to_json().serialize());
    }

    #[test]
    fn snapshotted_run_is_byte_identical_and_warm_after_restart() {
        let dir =
            std::env::temp_dir().join(format!("dominolp-runner-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let job = fig5_job(RunObjective::Compare);
        let cold_plain = run_job(&job).unwrap();

        // Cold run with a store: same bytes, kernel built once (the MA
        // side), the MP side already warm from the shared snapshot.
        let store = SnapshotStore::on_disk(&dir).unwrap();
        let cold = run_job_snapshotted(&job, Some(&store), &|| false).unwrap();
        assert_eq!(
            cold.to_json().serialize(),
            cold_plain.to_json().serialize(),
            "the snapshot path must not change outcomes"
        );
        let stats = store.stats();
        assert_eq!(stats.kernel_builds, 1, "MA builds, MP loads");
        assert_eq!(stats.stores, 1);
        assert!(stats.hits >= 1);

        // A restarted process: first request served fully from the
        // snapshot, zero kernel recompute, byte-identical outcome.
        let restarted = SnapshotStore::on_disk(&dir).unwrap();
        let warm = run_job_snapshotted(&job, Some(&restarted), &|| false).unwrap();
        assert_eq!(warm.to_json().serialize(), cold_plain.to_json().serialize());
        let stats = restarted.stats();
        assert_eq!(stats.kernel_builds, 0, "warm restart recomputes nothing");
        assert_eq!(stats.hits, 2, "both sides load the shared snapshot");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshotted_timed_probe_warms_the_run() {
        let dir =
            std::env::temp_dir().join(format!("dominolp-runner-probe-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut job = fig5_job(RunObjective::Compare);
        job.spec.timing_fraction = Some(0.9);
        let job = FlowJob::new(job.spec, job.network);
        let plain = run_job(&job).unwrap();

        let store = SnapshotStore::on_disk(&dir).unwrap();
        let snapshotted = run_job_snapshotted(&job, Some(&store), &|| false).unwrap();
        assert_eq!(
            snapshotted.to_json().serialize(),
            plain.to_json().serialize()
        );
        let stats = store.stats();
        // Probe, MA and MP all share one snapshot: one build, two hits.
        assert_eq!(stats.kernel_builds, 1);
        assert_eq!(stats.hits, 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timed_compare_shares_one_clock() {
        let mut job = fig5_job(RunObjective::Compare);
        job.spec.timing_fraction = Some(0.9);
        let job = FlowJob::new(job.spec, job.network);
        let outcome = run_job(&job).unwrap();
        let clock = outcome.clock_ps.unwrap();
        assert!(clock > 0.0);
        assert!(outcome.ma.unwrap().timing_met);
    }
}
