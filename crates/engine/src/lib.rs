//! Parallel batch flow engine for the `dominolp` workspace — run *many*
//! circuits through the paper's synthesis flow concurrently, and never run
//! the same one twice.
//!
//! The experiment binaries in `domino-bench` originally drove every circuit
//! through parse → probabilities → search → synthesis → techmap → simulation
//! serially and from scratch. This crate turns that one-shot pipeline into a
//! production-style subsystem:
//!
//! * [`JobSpec`] / [`FlowJob`] / [`FlowOutcome`] — a fully serializable job
//!   model: circuit source (built-in suite row, BLIF file, or inline BLIF),
//!   PI probability profile, objective (min-area / min-power / compare),
//!   the complete flow/library/simulation configuration, and a pure-data
//!   result that is `PartialEq`-comparable and JSON-roundtrippable;
//! * [`FlowEngine`] — a work-stealing thread pool (std threads, no external
//!   dependencies) with per-job [`ProgressEvent`] callbacks and cooperative
//!   [`CancelToken`] cancellation; results always come back in input order,
//!   and `threads = N` is bit-identical to `threads = 1`;
//! * [`ResultCache`] — a content-addressed cache keyed by
//!   [`Network::structural_digest`](domino_netlist::Network::structural_digest)
//!   plus the canonical JSON of every result-affecting spec field, with
//!   in-memory and on-disk (one JSON file per entry) backends and
//!   hit/miss/store [`CacheStats`];
//! * `dominoc` — the CLI binary driving all of it (it lives in
//!   `domino-serve` next to the `dominod` server so it can also speak the
//!   wire protocol): `run` one BLIF, `batch` many, `suite` for the
//!   built-in Table 1/2 circuits, `cache stats` / `cache clear` for the
//!   disk cache; paper-style tables on stdout and machine-readable JSONL
//!   on request.
//!
//! # Example
//!
//! ```
//! use domino_engine::{EngineConfig, FlowEngine, JobSpec, ResultCache};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), domino_engine::EngineError> {
//! let cache = Arc::new(ResultCache::in_memory());
//! let engine = FlowEngine::new(EngineConfig {
//!     threads: 2,
//!     cache: Some(Arc::clone(&cache)),
//!     snapshots: None, // see SnapshotStore for restart-warm kernels
//! });
//! let jobs = vec![JobSpec::suite("frg1").resolve()?];
//! let cold = engine.run_batch(&jobs);
//! let warm = engine.run_batch(&jobs); // answered from the cache
//! assert_eq!(cold[0].outcome(), warm[0].outcome());
//! assert!(warm[0].was_cached());
//! assert_eq!(cache.stats().misses, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
#[allow(clippy::module_inception)]
mod engine;
mod error;
mod job;
pub mod json;
pub mod report;
mod runner;

pub use cache::{CacheStats, ResultCache};
pub use domino_bdd::ReorderMode;
pub use domino_sim::SimStats;
pub use domino_store::{SnapshotStats, SnapshotStore, WarmSnapshot};
pub use engine::{CancelToken, EngineConfig, FlowEngine, JobResult, ProgressEvent};
pub use error::EngineError;
pub use job::{
    assignment_string, cache_key, snapshot_key, BddKernelStats, CircuitSource, FlowJob,
    FlowOutcome, JobSpec, ObjectiveResult, PiSpec, ReorderInfo, RunObjective,
};
pub use runner::{
    derive_clock_ps, derive_clock_ps_snapshotted, derive_clock_ps_with_cancel, run_job,
    run_job_snapshotted, run_job_with_cancel, run_objective, run_objective_snapshotted,
    run_objective_with_cancel,
};
