//! Minimal JSON document model with a deterministic writer and a strict
//! reader.
//!
//! The build environment has no registry access, so the engine carries its
//! own ~300-line JSON layer instead of `serde_json`. Two properties matter
//! here and are guaranteed:
//!
//! * **Determinism** — objects preserve insertion order and numbers are
//!   written with Rust's shortest-roundtrip `f64` formatting, so serializing
//!   the same value twice yields byte-identical text (the result cache and
//!   the engine's equivalence tests rely on this);
//! * **Roundtrip fidelity** — `parse(&v.serialize())` reproduces `v` for
//!   every value the engine writes (finite numbers only; JSON has no
//!   NaN/infinity).

use std::fmt;

/// A JSON value. Objects keep insertion order (no sorting, no hashing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `usize` if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no whitespace), deterministically.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                debug_assert!(n.is_finite(), "JSON cannot carry NaN/infinity");
                // Shortest-roundtrip formatting; integral values print
                // without a trailing ".0" (matches common JSON writers).
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Json::obj(vec![
            ("name", Json::Str("frg1 \"quoted\"\n".into())),
            ("size", Json::Num(98.0)),
            ("saving", Json::Num(34.125)),
            ("timed", Json::Bool(false)),
            ("clock", Json::Null),
            (
                "trace",
                Json::Arr(vec![Json::Num(1.5), Json::Num(-2.0), Json::Num(0.001)]),
            ),
        ]);
        let text = v.serialize();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Json::obj(vec![("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.serialize(), v.serialize());
        // Insertion order is preserved, not sorted.
        assert_eq!(v.serialize(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for x in [0.1, 1.0 / 3.0, 12.47, 1e-9, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::Num(x).serialize();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(4096.0).serialize(), "4096");
        assert_eq!(Json::Num(-3.0).serialize(), "-3");
        assert_eq!(Json::Num(2.5).serialize(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} {}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn accessor_types() {
        let v = parse(r#"{"n":3,"f":2.5,"s":"x","b":true,"u":18446744073709551615}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("f").unwrap().as_usize(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }
}
