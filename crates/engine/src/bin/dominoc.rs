//! `dominoc` — drive the domino synthesis flow from the command line.
//!
//! ```text
//! dominoc run <file.blif> [options]        one circuit
//! dominoc batch <file.blif>... [options]   many circuits in parallel
//! dominoc suite [--public] [options]       the built-in Table 1/2 suite
//! dominoc cache stats --cache <dir>        disk cache counters/entries
//! dominoc cache clear --cache <dir>        empty the disk cache
//! ```
//!
//! Exit status: 0 if every job completed, 1 on any failure, 2 on usage
//! errors.

use std::process::ExitCode;
use std::sync::Arc;

use domino_engine::{
    report, CancelToken, CircuitSource, EngineConfig, FlowEngine, JobResult, JobSpec,
    ProgressEvent, ResultCache, RunObjective,
};

fn usage() -> &'static str {
    "usage: dominoc <run|batch|suite|cache> [args]\n\
     \n\
     dominoc run <file.blif> [options]        one circuit\n\
     dominoc batch <file.blif>... [options]   many circuits in parallel\n\
     dominoc suite [--public] [options]       built-in Table 1/2 suite\n\
     dominoc cache stats --cache <dir>\n\
     dominoc cache clear --cache <dir>\n\
     \n\
     options:\n\
       --objective area|power|compare   [compare]\n\
       --p <f>                          PI probability [0.5]\n\
       --timed <fraction>               timed synthesis clock fraction\n\
       --and-penalty <f>                MP series-stack penalty\n\
       --threads <n>                    engine workers, 0 = all CPUs [0]\n\
       --cache <dir>                    disk result cache\n\
       --jsonl <file|->                 JSONL outcomes\n\
       --sim-cycles <n>                 simulation cycles [4096]\n\
       --sim-shards <n>                 simulation stream shards [8]\n\
       --sim-threads <n>                threads per simulation, 0 = all CPUs [1]\n\
       --stats                          print BDD kernel + simulation statistics\n\
       --quiet                          suppress progress"
}

#[derive(Debug)]
struct Options {
    objective: RunObjective,
    p: f64,
    timed: Option<f64>,
    and_penalty: Option<f64>,
    threads: usize,
    cache_dir: Option<String>,
    jsonl: Option<String>,
    sim_cycles: Option<usize>,
    sim_shards: Option<u32>,
    sim_threads: Option<usize>,
    stats: bool,
    quiet: bool,
    public_only: bool,
    positional: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            objective: RunObjective::Compare,
            p: 0.5,
            timed: None,
            and_penalty: None,
            threads: 0,
            cache_dir: None,
            jsonl: None,
            sim_cycles: None,
            sim_shards: None,
            sim_threads: None,
            stats: false,
            quiet: false,
            public_only: false,
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--objective" => {
                    let v = value("--objective")?;
                    opts.objective = match v.as_str() {
                        "area" | "min-area" | "ma" => RunObjective::MinArea,
                        "power" | "min-power" | "mp" => RunObjective::MinPower,
                        "compare" | "both" => RunObjective::Compare,
                        other => return Err(format!("unknown objective '{other}'")),
                    };
                }
                "--p" => {
                    opts.p = value("--p")?
                        .parse()
                        .map_err(|_| "--p needs a number".to_string())?;
                }
                "--timed" => {
                    opts.timed = Some(
                        value("--timed")?
                            .parse()
                            .map_err(|_| "--timed needs a number".to_string())?,
                    );
                }
                "--and-penalty" => {
                    opts.and_penalty = Some(
                        value("--and-penalty")?
                            .parse()
                            .map_err(|_| "--and-penalty needs a number".to_string())?,
                    );
                }
                "--threads" => {
                    opts.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an integer".to_string())?;
                }
                "--cache" => opts.cache_dir = Some(value("--cache")?),
                "--jsonl" => opts.jsonl = Some(value("--jsonl")?),
                "--sim-cycles" => {
                    opts.sim_cycles = Some(
                        value("--sim-cycles")?
                            .parse()
                            .map_err(|_| "--sim-cycles needs an integer".to_string())?,
                    );
                }
                "--sim-shards" => {
                    let n: u32 = value("--sim-shards")?
                        .parse()
                        .map_err(|_| "--sim-shards needs an integer".to_string())?;
                    if n == 0 {
                        return Err("--sim-shards must be at least 1".to_string());
                    }
                    opts.sim_shards = Some(n);
                }
                "--sim-threads" => {
                    opts.sim_threads = Some(
                        value("--sim-threads")?
                            .parse()
                            .map_err(|_| "--sim-threads needs an integer".to_string())?,
                    );
                }
                "--stats" => opts.stats = true,
                "--quiet" => opts.quiet = true,
                "--public" => opts.public_only = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown option '{other}'"));
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    fn apply(&self, mut spec: JobSpec) -> JobSpec {
        spec.objective = self.objective;
        spec.pi = domino_engine::PiSpec::Uniform(self.p);
        spec.timing_fraction = self.timed;
        spec.mp_and_penalty = self.and_penalty;
        if let Some(cycles) = self.sim_cycles {
            spec.sim.cycles = cycles;
        }
        if let Some(shards) = self.sim_shards {
            spec.sim.shards = shards;
        }
        if let Some(threads) = self.sim_threads {
            spec.sim.threads = threads;
        }
        spec
    }

    fn cache(&self) -> Result<Option<Arc<ResultCache>>, String> {
        match &self.cache_dir {
            Some(dir) => ResultCache::on_disk(dir)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| e.to_string()),
            None => Ok(None),
        }
    }
}

fn blif_job(path: &str, opts: &Options) -> JobSpec {
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    opts.apply(JobSpec {
        name,
        source: CircuitSource::BlifPath(path.to_string()),
        ..JobSpec::suite("unused")
    })
}

fn run_jobs(specs: Vec<JobSpec>, opts: &Options) -> Result<ExitCode, String> {
    let total = specs.len();
    let mut jobs = Vec::with_capacity(total);
    for spec in specs {
        jobs.push(spec.resolve().map_err(|e| e.to_string())?);
    }
    let cache = opts.cache()?;
    let engine = FlowEngine::new(EngineConfig {
        threads: opts.threads,
        cache: cache.clone(),
    });
    let quiet = opts.quiet;
    let progress = move |event: ProgressEvent| {
        if quiet {
            return;
        }
        match event {
            ProgressEvent::Started { index, name } => {
                eprintln!("[{}/{}] {name} ...", index + 1, total);
            }
            ProgressEvent::Finished {
                index,
                name,
                cached,
                elapsed_ms,
            } => {
                let how = if cached { "cache hit" } else { "computed" };
                eprintln!(
                    "[{}/{}] {name} done ({how}, {elapsed_ms} ms)",
                    index + 1,
                    total
                );
            }
            ProgressEvent::Failed { index, name, error } => {
                eprintln!("[{}/{}] {name} FAILED: {error}", index + 1, total);
            }
            ProgressEvent::Cancelled { index } => {
                eprintln!("[{}/{}] cancelled", index + 1, total);
            }
        }
    };
    let results = engine.run_batch_with(&jobs, progress, &CancelToken::new());

    print!("{}", report::format_outcomes(&results));
    if opts.stats {
        print!("{}", report::format_kernel_stats(&results));
    }
    if let Some(cache) = &cache {
        let stats = cache.stats();
        println!(
            "cache: {} hits ({} memory, {} disk), {} misses, {} entries on disk",
            stats.hits(),
            stats.memory_hits,
            stats.disk_hits,
            stats.misses,
            cache.disk_len(),
        );
    }
    if let Some(path) = &opts.jsonl {
        let jsonl = report::to_jsonl(&results);
        if path == "-" {
            print!("{jsonl}");
        } else {
            std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    let all_ok = results
        .iter()
        .all(|r| matches!(r, JobResult::Completed { .. }));
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_suite(opts: &Options) -> Result<ExitCode, String> {
    let specs = suite_names(opts.public_only)
        .into_iter()
        .map(|name| opts.apply(JobSpec::suite(name)))
        .collect();
    run_jobs(specs, opts)
}

/// Suite row names, optionally restricted to the public-domain subset
/// (owned by `domino-workloads`, so the CLI never drifts from the library).
fn suite_names(public_only: bool) -> Vec<&'static str> {
    if public_only {
        domino_workloads::public_row_names()
    } else {
        domino_workloads::table_row_names()
    }
}

fn cmd_cache(args: &[String]) -> Result<ExitCode, String> {
    let sub = args.first().map(String::as_str);
    let opts = Options::parse(args.get(1..).unwrap_or(&[]))?;
    let dir = opts
        .cache_dir
        .ok_or_else(|| "cache commands need --cache <dir>".to_string())?;
    let cache = ResultCache::on_disk(&dir).map_err(|e| e.to_string())?;
    match sub {
        Some("stats") => {
            println!("cache directory: {dir}");
            println!("entries on disk: {}", cache.disk_len());
            Ok(ExitCode::SUCCESS)
        }
        Some("clear") => {
            let before = cache.disk_len();
            cache.clear().map_err(|e| e.to_string())?;
            println!("removed {before} entries from {dir}");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("cache subcommand must be 'stats' or 'clear'".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let run = || -> Result<ExitCode, String> {
        match command {
            "run" => {
                let opts = Options::parse(rest)?;
                if opts.positional.len() != 1 {
                    return Err("run needs exactly one BLIF file".to_string());
                }
                let spec = blif_job(&opts.positional[0], &opts);
                run_jobs(vec![spec], &opts)
            }
            "batch" => {
                let opts = Options::parse(rest)?;
                if opts.positional.is_empty() {
                    return Err("batch needs at least one BLIF file".to_string());
                }
                let specs = opts.positional.iter().map(|p| blif_job(p, &opts)).collect();
                run_jobs(specs, &opts)
            }
            "suite" => {
                let opts = Options::parse(rest)?;
                if !opts.positional.is_empty() {
                    return Err("suite takes no positional arguments".to_string());
                }
                cmd_suite(&opts)
            }
            "cache" => cmd_cache(rest),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unknown command '{other}'")),
        }
    };
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("dominoc: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
