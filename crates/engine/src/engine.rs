//! The batch executor: a work-stealing thread pool over [`FlowJob`]s with
//! progress callbacks, cooperative cancellation and cache integration.
//!
//! Jobs are independent (each carries its own circuit and config), so the
//! pool is a shared claim counter over an immutable job list: every worker
//! steals the next unclaimed index, runs it (or answers it from the
//! [`ResultCache`]), and reports through the progress callback. Results are
//! written back by input index, so the output order is the input order
//! regardless of scheduling — combined with per-job determinism this makes
//! `threads = 1` and `threads = N` produce *identical* outcome vectors,
//! which the engine's equivalence tests pin on the full public suite.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use domino_store::SnapshotStore;

use crate::cache::ResultCache;
use crate::error::EngineError;
use crate::job::{FlowJob, FlowOutcome};
use crate::runner::run_job_snapshotted;

/// Cooperative cancellation handle, shared between the caller and workers.
///
/// Batch runs check cancellation between jobs: a running flow finishes,
/// but no new job is claimed afterwards. The single-job
/// [`FlowEngine::run_one`] path additionally threads the token into the
/// flow's stage boundaries (probabilities → search → synthesis →
/// simulation), so a running job stops at the next boundary instead of
/// completing — this is what bounds `DELETE /jobs/:id` latency on a
/// `dominod` worker. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every batch holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// What happened to one job of a batch.
#[derive(Debug)]
pub enum JobResult {
    /// The job ran (or was answered from the cache).
    Completed {
        /// The outcome (boxed: it dwarfs the other variants).
        outcome: Box<FlowOutcome>,
        /// `true` if it came from the cache without recomputation.
        cached: bool,
    },
    /// The job failed; the rest of the batch still runs.
    Failed(EngineError),
    /// The batch was cancelled before this job was claimed.
    Cancelled,
}

impl JobResult {
    /// The outcome if the job completed.
    pub fn outcome(&self) -> Option<&FlowOutcome> {
        match self {
            JobResult::Completed { outcome, .. } => Some(outcome),
            _ => None,
        }
    }

    /// `true` if the job completed from the cache.
    pub fn was_cached(&self) -> bool {
        matches!(self, JobResult::Completed { cached: true, .. })
    }
}

/// Progress notifications delivered to the batch callback.
///
/// Callbacks may arrive from any worker thread, but never concurrently for
/// the same `index`, and `Started` always precedes that index's terminal
/// event.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A worker claimed job `index`.
    Started {
        /// Index into the submitted job list.
        index: usize,
        /// The job's display name.
        name: String,
    },
    /// Job `index` finished.
    Finished {
        /// Index into the submitted job list.
        index: usize,
        /// The job's display name.
        name: String,
        /// `true` if answered from the cache.
        cached: bool,
        /// Wall-clock milliseconds spent on this job.
        elapsed_ms: u64,
    },
    /// Job `index` failed (the error text; the full error is in the
    /// returned [`JobResult`]).
    Failed {
        /// Index into the submitted job list.
        index: usize,
        /// The job's display name.
        name: String,
        /// Rendered error.
        error: String,
    },
    /// Job `index` was never claimed because the batch was cancelled.
    Cancelled {
        /// Index into the submitted job list.
        index: usize,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads. `0` means one per available CPU (capped by the job
    /// count either way).
    pub threads: usize,
    /// Shared result cache; `None` disables caching.
    pub cache: Option<Arc<ResultCache>>,
    /// Persistent warm-state snapshot store; `None` disables snapshotting.
    /// Sits *under* the result cache: a cache hit answers the whole job,
    /// a snapshot hit answers only the kernel stage (BDDs + converged
    /// probabilities) of a job that still has to run its search,
    /// synthesis and simulation stages. The snapshot's value is surviving
    /// restarts — the cache's memory layer does not.
    pub snapshots: Option<Arc<SnapshotStore>>,
}

/// In-flight request coalescing ("single-flight"): one gate mutex per
/// cache key currently being computed. A worker about to run a cacheable
/// job takes its key's gate first; concurrent submissions of the same
/// key queue on the gate and — once the leader has stored the outcome —
/// answer from the cache instead of recomputing. This keeps the engine's
/// counter contract exact: `misses` stays "number of flow
/// recomputations" even under duplicate in-flight submissions.
#[derive(Debug, Default)]
struct SingleFlight {
    keys: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl SingleFlight {
    /// The gate for `key`, creating it if this is the first in-flight
    /// computation of that key.
    fn acquire(&self, key: &str) -> Arc<Mutex<()>> {
        let mut keys = self.keys.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(keys.entry(key.to_string()).or_default())
    }

    /// Drops the table entry once the caller (still holding its `Arc`
    /// from [`SingleFlight::acquire`]) is the last participant: the map
    /// holds one reference, the caller the other. A surviving waiter
    /// keeps the count higher and the entry alive.
    fn release(&self, key: &str) {
        let mut keys = self.keys.lock().unwrap_or_else(|p| p.into_inner());
        if keys.get(key).is_some_and(|g| Arc::strong_count(g) <= 2) {
            keys.remove(key);
        }
    }
}

/// The parallel batch flow executor.
#[derive(Debug, Default)]
pub struct FlowEngine {
    config: EngineConfig,
    singleflight: SingleFlight,
}

impl FlowEngine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        FlowEngine {
            config,
            singleflight: SingleFlight::default(),
        }
    }

    /// A serial engine with no cache (useful as a baseline).
    pub fn serial() -> Self {
        FlowEngine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
    }

    /// The snapshot store this engine loads warm state from, if any.
    pub fn snapshots(&self) -> Option<&Arc<SnapshotStore>> {
        self.config.snapshots.as_ref()
    }

    /// The cache this engine consults, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.config.cache.as_ref()
    }

    /// Resolved worker count for a batch of `jobs` jobs.
    fn worker_count(&self, jobs: usize) -> usize {
        let requested = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        requested.clamp(1, jobs.max(1))
    }

    /// Runs every job and returns one [`JobResult`] per job, in input
    /// order. Convenience wrapper over [`FlowEngine::run_batch_with`] with
    /// no progress reporting and no cancellation.
    pub fn run_batch(&self, jobs: &[FlowJob]) -> Vec<JobResult> {
        self.run_batch_with(jobs, |_| {}, &CancelToken::new())
    }

    /// Runs a single job *inline on the calling thread* — no worker pool,
    /// no thread spawn — with the same cache consultation and panic
    /// containment as a batch run. This is the job-ingest path for
    /// services that bring their own scheduling (e.g. `dominod` workers):
    /// a warm cache hit costs a lookup, not a thread.
    pub fn run_one(&self, job: &FlowJob, cancel: &CancelToken) -> JobResult {
        if cancel.is_cancelled() {
            return JobResult::Cancelled;
        }
        execute_with_cache(
            job,
            self.config.cache.as_deref(),
            self.config.snapshots.as_deref(),
            &self.singleflight,
            &|| cancel.is_cancelled(),
        )
    }

    /// Runs every job with a progress callback and a cancellation token.
    ///
    /// Results come back in input order. A failed job does not abort the
    /// batch; a cancelled batch finishes the jobs already claimed and marks
    /// the rest [`JobResult::Cancelled`].
    pub fn run_batch_with<F>(
        &self,
        jobs: &[FlowJob],
        progress: F,
        cancel: &CancelToken,
    ) -> Vec<JobResult>
    where
        F: Fn(ProgressEvent) + Send + Sync,
    {
        let workers = self.worker_count(jobs.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobResult>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let progress = &progress;
        let next = &next;
        let slots = &slots;
        let cache = self.config.cache.as_deref();
        let snapshots = self.config.snapshots.as_deref();
        let singleflight = &self.singleflight;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= jobs.len() {
                        return;
                    }
                    let job = &jobs[index];
                    if cancel.is_cancelled() {
                        *slots[index].lock().expect("slot lock") = Some(JobResult::Cancelled);
                        progress(ProgressEvent::Cancelled { index });
                        continue;
                    }
                    progress(ProgressEvent::Started {
                        index,
                        name: job.spec.name.clone(),
                    });
                    let start = Instant::now();
                    // Batch semantics: claimed jobs finish even when the
                    // batch is cancelled, so no mid-flow token here.
                    let result = execute_with_cache(job, cache, snapshots, singleflight, &|| false);
                    let elapsed_ms = start.elapsed().as_millis() as u64;
                    match &result {
                        JobResult::Completed { cached, .. } => {
                            progress(ProgressEvent::Finished {
                                index,
                                name: job.spec.name.clone(),
                                cached: *cached,
                                elapsed_ms,
                            });
                        }
                        JobResult::Failed(e) => {
                            progress(ProgressEvent::Failed {
                                index,
                                name: job.spec.name.clone(),
                                error: e.to_string(),
                            });
                        }
                        JobResult::Cancelled => unreachable!("cancellation handled above"),
                    }
                    *slots[index].lock().expect("slot lock") = Some(result);
                });
            }
        });

        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("slot lock")
                    .take()
                    .expect("every index claimed exactly once")
            })
            .collect()
    }
}

/// Runs one job, consulting (and filling) the cache if one is configured.
///
/// The display name is patched onto cache hits: two jobs over the same
/// content can carry different row labels, and the label is explicitly not
/// part of the content address.
fn execute_with_cache(
    job: &FlowJob,
    cache: Option<&ResultCache>,
    snapshots: Option<&SnapshotStore>,
    singleflight: &SingleFlight,
    is_cancelled: &dyn Fn() -> bool,
) -> JobResult {
    // The key's gate comes *before* the lookup: a duplicate in-flight
    // submission queues here while the leader computes, then finds the
    // leader's outcome in the cache. Uncontended the gate is one map
    // lock + one mutex lock — noise next to a flow run or a JSON decode.
    let gate = cache.map(|_| singleflight.acquire(job.cache_key()));
    let guard: Option<MutexGuard<'_, ()>> = gate
        .as_ref()
        .map(|g| g.lock().unwrap_or_else(|p| p.into_inner()));
    let release = |guard: Option<MutexGuard<'_, ()>>| {
        drop(guard);
        if gate.is_some() {
            singleflight.release(job.cache_key());
        }
    };
    if let Some(cache) = cache {
        if let Some(mut outcome) = cache.get(job.cache_key()) {
            outcome.name = job.spec.name.clone();
            release(guard);
            return JobResult::Completed {
                outcome: Box::new(outcome),
                cached: true,
            };
        }
    }
    // A panicking flow must not take the whole batch (and its scope) down:
    // contain it to this job. The job data is read-only here, so unwind
    // safety is not a concern.
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_snapshotted(job, snapshots, is_cancelled)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(EngineError::Panicked(msg))
    });
    let result = match ran {
        Ok(outcome) => {
            if let Some(cache) = cache {
                cache.put(job.cache_key(), &outcome);
            }
            JobResult::Completed {
                outcome: Box::new(outcome),
                cached: false,
            }
        }
        Err(EngineError::Cancelled) => JobResult::Cancelled,
        Err(e) => JobResult::Failed(e),
    };
    // The gate opens only after the outcome is stored (or the run gave
    // up): a waiter waking here either hits the cache or — after a
    // cancelled/failed leader — becomes the new leader and recomputes.
    release(guard);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CircuitSource, JobSpec, RunObjective};
    use domino_netlist::Network;
    use domino_sim::SimConfig;

    fn tiny_job(name: &str, n_extra: usize) -> FlowJob {
        let mut net = Network::new(name);
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let mut last = net.add_or([a, b]).unwrap();
        for _ in 0..n_extra {
            last = net.add_not(last).unwrap();
        }
        net.add_output("f", last).unwrap();
        let mut spec = JobSpec::for_network(name, &net);
        spec.objective = RunObjective::Compare;
        spec.sim = SimConfig {
            cycles: 64,
            warmup: 4,
            seed: 1,
            ..SimConfig::default()
        };
        FlowJob::new(spec, net)
    }

    #[test]
    fn batch_preserves_input_order() {
        let jobs: Vec<FlowJob> = (0..6).map(|i| tiny_job(&format!("job{i}"), i)).collect();
        let engine = FlowEngine::new(EngineConfig {
            threads: 3,
            cache: None,
            snapshots: None,
        });
        let results = engine.run_batch(&jobs);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.outcome().unwrap().name, format!("job{i}"));
        }
    }

    #[test]
    fn failures_do_not_abort_the_batch() {
        let good = tiny_job("good", 0);
        let bad = FlowJob::new(
            JobSpec {
                source: CircuitSource::Suite("nonesuch".into()),
                ..JobSpec::suite("bad")
            },
            {
                // An invalid network: an output driven by a latch with no
                // data input fails flow validation.
                let mut net = Network::new("bad");
                let l = net.add_latch(false);
                net.add_output("q", l).unwrap();
                net
            },
        );
        let engine = FlowEngine::serial();
        let results = engine.run_batch(&[bad, good]);
        assert!(matches!(results[0], JobResult::Failed(_)));
        assert!(results[1].outcome().is_some());
    }

    #[test]
    fn cache_answers_second_batch_without_recompute() {
        let cache = Arc::new(ResultCache::in_memory());
        let engine = FlowEngine::new(EngineConfig {
            threads: 2,
            cache: Some(Arc::clone(&cache)),
            snapshots: None,
        });
        let jobs: Vec<FlowJob> = (0..4).map(|i| tiny_job(&format!("j{i}"), i)).collect();
        let cold = engine.run_batch(&jobs);
        assert!(cold.iter().all(|r| !r.was_cached()));
        assert_eq!(cache.stats().misses, 4);
        let warm = engine.run_batch(&jobs);
        assert!(warm.iter().all(JobResult::was_cached));
        // Zero new misses: zero flow recomputations.
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits(), 4);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome(), w.outcome());
        }
    }

    #[test]
    fn pre_cancelled_batch_runs_nothing() {
        let jobs: Vec<FlowJob> = (0..3).map(|i| tiny_job(&format!("c{i}"), i)).collect();
        let cancel = CancelToken::new();
        cancel.cancel();
        let engine = FlowEngine::serial();
        let events = Mutex::new(Vec::new());
        let results = engine.run_batch_with(&jobs, |e| events.lock().unwrap().push(e), &cancel);
        assert!(results.iter().all(|r| matches!(r, JobResult::Cancelled)));
        assert_eq!(events.lock().unwrap().len(), 3);
    }

    #[test]
    fn run_one_cancels_mid_flow_without_poisoning_the_cache() {
        let cache = Arc::new(ResultCache::in_memory());
        let engine = FlowEngine::new(EngineConfig {
            threads: 1,
            cache: Some(Arc::clone(&cache)),
            snapshots: None,
        });
        let job = tiny_job("midflow", 2);
        // Pre-flight: an already-cancelled token short-circuits run_one.
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = engine.run_one(&job, &cancel);
        assert!(matches!(result, JobResult::Cancelled));
        assert_eq!(cache.stats().stores, 0);
        assert_eq!(cache.len(), 0);

        // Mid-flow: defeat the up-front check with a token that flips
        // after the first boundary consultation — the flow stops at the
        // next boundary and nothing is cached.
        let flips = AtomicUsize::new(0);
        let outcome =
            crate::runner::run_job_with_cancel(&job, &|| flips.fetch_add(1, Ordering::SeqCst) >= 1);
        assert!(matches!(outcome, Err(EngineError::Cancelled)));
        assert!(flips.load(Ordering::SeqCst) >= 2);
    }

    /// Duplicate in-flight submissions of one cache key share a single
    /// computation: the leader runs the flow once, every concurrent
    /// duplicate queues on the key's single-flight gate and answers from
    /// the cache — byte-identical outcomes, exactly one recomputation.
    #[test]
    fn concurrent_same_key_submissions_compute_once() {
        let cache = Arc::new(ResultCache::in_memory());
        let engine = FlowEngine::new(EngineConfig {
            threads: 1,
            cache: Some(Arc::clone(&cache)),
            snapshots: None,
        });
        let job = tiny_job("dup", 3);
        let engine = &engine;
        let job = &job;
        let outcomes: Vec<FlowOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || match engine.run_one(job, &CancelToken::new()) {
                        JobResult::Completed { outcome, .. } => *outcome,
                        other => panic!("expected completion, got {other:?}"),
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for o in &outcomes[1..] {
            assert_eq!(o, &outcomes[0], "coalesced outcomes are identical");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one flow recomputation");
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.hits(), 3, "every duplicate answered from cache");
        // The gate table does not leak entries.
        assert!(engine.singleflight.keys.lock().unwrap().is_empty());
    }

    #[test]
    fn mid_batch_cancellation_stops_remaining_jobs() {
        let jobs: Vec<FlowJob> = (0..8).map(|i| tiny_job(&format!("m{i}"), i)).collect();
        let cancel = CancelToken::new();
        let engine = FlowEngine::serial();
        let cancel_after_first = {
            let cancel = cancel.clone();
            move |event: ProgressEvent| {
                if matches!(event, ProgressEvent::Finished { index: 0, .. }) {
                    cancel.cancel();
                }
            }
        };
        let results = engine.run_batch_with(&jobs, cancel_after_first, &cancel);
        assert!(results[0].outcome().is_some());
        assert!(results[1..]
            .iter()
            .all(|r| matches!(r, JobResult::Cancelled)));
    }
}
