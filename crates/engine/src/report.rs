//! Paper-style table rendering and JSONL emission for batch results.

use std::fmt::Write as _;

use crate::engine::JobResult;

/// Formats a batch's completed outcomes in the paper's MA-vs-MP column
/// layout (Tables 1 and 2), one row per completed job, with a `cached`
/// marker column. Failed and cancelled jobs render as annotation rows.
pub fn format_outcomes(results: &[JobResult]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "{:<11} {:>5} {:>5} | {:>6} {:>8} | {:>6} {:>8} | {:>9} {:>9} | {:>6}",
        "Ckt", "#PIs", "#POs", "MA Sz", "MA Pwr", "MP Sz", "MP Pwr", "%AreaPen", "%PwrSav", "cache"
    )
    .expect("write to string");
    writeln!(s, "{}", "-".repeat(96)).expect("write to string");
    let mut pen_sum = 0.0;
    let mut sav_sum = 0.0;
    let mut compared = 0usize;
    for result in results {
        match result {
            JobResult::Completed { outcome, cached } => {
                let fmt_size = |side: &Option<crate::ObjectiveResult>| match side {
                    Some(r) => format!("{}", r.size),
                    None => "-".to_string(),
                };
                let fmt_pwr = |side: &Option<crate::ObjectiveResult>| match side {
                    Some(r) => format!("{:.2}", r.power_ma()),
                    None => "-".to_string(),
                };
                let (pen, sav) = match (outcome.area_penalty_pct(), outcome.power_saving_pct()) {
                    (Some(p), Some(v)) => {
                        pen_sum += p;
                        sav_sum += v;
                        compared += 1;
                        (format!("{p:.1}"), format!("{v:.1}"))
                    }
                    _ => ("-".to_string(), "-".to_string()),
                };
                writeln!(
                    s,
                    "{:<11} {:>5} {:>5} | {:>6} {:>8} | {:>6} {:>8} | {:>9} {:>9} | {:>6}",
                    outcome.name,
                    outcome.pis,
                    outcome.pos,
                    fmt_size(&outcome.ma),
                    fmt_pwr(&outcome.ma),
                    fmt_size(&outcome.mp),
                    fmt_pwr(&outcome.mp),
                    pen,
                    sav,
                    if *cached { "warm" } else { "cold" },
                )
                .expect("write to string");
            }
            JobResult::Failed(e) => {
                writeln!(s, "!! failed: {e}").expect("write to string");
            }
            JobResult::Cancelled => {
                writeln!(s, "-- cancelled").expect("write to string");
            }
        }
    }
    writeln!(s, "{}", "-".repeat(96)).expect("write to string");
    if compared > 0 {
        let n = compared as f64;
        writeln!(
            s,
            "{:<25} {:>39} | {:>9.1} {:>9.1} |",
            "Average",
            "",
            pen_sum / n,
            sav_sum / n
        )
        .expect("write to string");
    }
    s
}

/// Formats per-job kernel statistics for completed jobs — the body of
/// `dominoc ... --stats`: BDD node counts, unique-table and op-cache hit
/// rates, plus packed-simulation work (vectors simulated, words evaluated,
/// lane utilization).
pub fn format_kernel_stats(results: &[JobResult]) -> String {
    let mut s = String::new();
    let pct = |r: Option<f64>| match r {
        Some(r) => format!("{:.1}%", 100.0 * r),
        None => "-".to_string(),
    };
    for result in results {
        let Some(outcome) = result.outcome() else {
            continue;
        };
        for (tag, side) in [("MA", &outcome.ma), ("MP", &outcome.mp)] {
            if let Some(r) = side {
                writeln!(
                    s,
                    "stats: {:<11} {tag}  bdd nodes {:>6}  unique {:>7} lookups {:>6} hit  \
                     ops {:>8} lookups {:>6} hit",
                    outcome.name,
                    r.bdd.nodes,
                    r.bdd.unique_hits + r.bdd.unique_misses,
                    pct(r.bdd.unique_hit_rate()),
                    r.bdd.cache_hits + r.bdd.cache_misses,
                    pct(r.bdd.cache_hit_rate()),
                )
                .expect("write to string");
                if let Some(reorder) = &r.bdd.reorder {
                    let order = reorder
                        .final_order
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    writeln!(
                        s,
                        "stats: {:<11} {tag}  reorder {}  swaps {:>5}  nodes {:>6} -> {:>6}  \
                         order [{order}]",
                        outcome.name,
                        reorder.mode.as_str(),
                        reorder.swaps,
                        reorder.nodes_before,
                        r.bdd.nodes,
                    )
                    .expect("write to string");
                }
                writeln!(
                    s,
                    "stats: {:<11} {tag}  sim vectors {:>8}  words {:>6}  shards {:>2}  \
                     lanes {:>6} used",
                    outcome.name,
                    r.sim.vectors,
                    r.sim.words,
                    r.sim.shards,
                    format!("{:.1}%", 100.0 * r.sim.lane_utilization()),
                )
                .expect("write to string");
            }
        }
    }
    s
}

/// Serializes every completed outcome as one JSON document per line
/// (JSONL), in input order. Failed/cancelled jobs are skipped.
pub fn to_jsonl(results: &[JobResult]) -> String {
    let mut s = String::new();
    for result in results {
        if let Some(outcome) = result.outcome() {
            s.push_str(&outcome.to_json().serialize());
            s.push('\n');
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;
    use crate::job::{FlowOutcome, ObjectiveResult};

    fn outcome() -> FlowOutcome {
        let side = ObjectiveResult {
            size: 100,
            cap_ma: 2.0,
            short_circuit_ma: 0.5,
            leakage_ma: 0.1,
            estimated_switching: 42.0,
            worst_arrival_ps: 300.0,
            timing_met: true,
            evaluations: 12,
            commits: 3,
            assignment: "++-".into(),
            bdd: crate::BddKernelStats::default(),
            sim: crate::SimStats {
                vectors: 4096,
                words: 80,
                measured_words: 64,
                shards: 8,
            },
        };
        FlowOutcome {
            name: "frg1".into(),
            key: "00".repeat(16),
            pis: 31,
            pos: 3,
            ma: Some(side.clone()),
            mp: Some(ObjectiveResult { size: 120, ..side }),
            clock_ps: None,
        }
    }

    #[test]
    fn table_includes_rows_and_average() {
        let results = vec![
            JobResult::Completed {
                outcome: Box::new(outcome()),
                cached: false,
            },
            JobResult::Failed(EngineError::Spec("boom".into())),
            JobResult::Cancelled,
        ];
        let table = format_outcomes(&results);
        assert!(table.contains("frg1"));
        assert!(table.contains("cold"));
        assert!(table.contains("!! failed: invalid job spec: boom"));
        assert!(table.contains("-- cancelled"));
        assert!(table.contains("Average"));
    }

    #[test]
    fn kernel_stats_show_reorder_only_when_it_ran() {
        let plain = vec![JobResult::Completed {
            outcome: Box::new(outcome()),
            cached: false,
        }];
        assert!(!format_kernel_stats(&plain).contains("reorder"));

        let mut sifted = outcome();
        let ma = sifted.ma.as_mut().unwrap();
        ma.bdd.reorder = Some(crate::ReorderInfo {
            mode: domino_bdd::ReorderMode::Sift,
            swaps: 12,
            nodes_before: 90,
            final_order: vec![2, 0, 1],
        });
        let results = vec![JobResult::Completed {
            outcome: Box::new(sifted),
            cached: false,
        }];
        let text = format_kernel_stats(&results);
        assert!(text.contains("reorder sift"), "{text}");
        assert!(text.contains("order [2 0 1]"), "{text}");
    }

    #[test]
    fn jsonl_has_one_line_per_completed_job() {
        let results = vec![
            JobResult::Completed {
                outcome: Box::new(outcome()),
                cached: true,
            },
            JobResult::Cancelled,
        ];
        let jsonl = to_jsonl(&results);
        assert_eq!(jsonl.lines().count(), 1);
        let parsed = FlowOutcome::from_json_text(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(parsed, outcome());
    }
}
