//! The serializable job model: what to run ([`JobSpec`]), on which circuit
//! ([`CircuitSource`]), and what came out ([`FlowOutcome`]).
//!
//! A [`JobSpec`] captures *every* knob that affects a flow's result — the
//! full [`FlowConfig`], [`Library`] and [`SimConfig`], the PI probability
//! profile, the objective, and the timed-synthesis settings — so that its
//! canonical JSON combined with the circuit's
//! [`structural digest`](domino_netlist::Network::structural_digest) forms a
//! sound content address for the result cache: equal key ⇒ equal outcome.
//!
//! [`FlowOutcome`] is the pure-data result (no netlists), cheap to clone,
//! `PartialEq`-comparable across thread counts, and serialized with the
//! engine's deterministic JSON writer so a cached outcome is byte-identical
//! to a recomputed one.

use std::fmt;
use std::path::Path;

use domino_bdd::ReorderMode;
use domino_netlist::Network;
use domino_phase::flow::FlowConfig;
use domino_phase::power::PowerModel;
use domino_phase::prob::{OrderingChoice, ProbabilityConfig};
use domino_phase::search::{MinAreaConfig, MinPowerConfig};
use domino_phase::{Phase, PhaseAssignment};
use domino_sgraph::MfvsConfig;
use domino_sim::{SimConfig, SimStats};
use domino_techmap::Library;

use crate::error::EngineError;
use crate::json::{parse, Json};

/// Where a job's circuit comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSource {
    /// A row of the built-in benchmark suite (`"frg1"`, `"Industry 1"`, ...).
    Suite(String),
    /// A BLIF file on disk, loaded at [`JobSpec::resolve`] time.
    BlifPath(String),
    /// Inline BLIF text (how provided networks are serialized).
    BlifInline(String),
}

/// Which flow(s) a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunObjective {
    /// Minimum-area baseline only.
    MinArea,
    /// Minimum-power flow only.
    MinPower,
    /// Both, with the timed clock target derived from the MA netlist — the
    /// paper's MA-vs-MP table methodology.
    Compare,
}

impl RunObjective {
    fn tag(self) -> &'static str {
        match self {
            RunObjective::MinArea => "min-area",
            RunObjective::MinPower => "min-power",
            RunObjective::Compare => "compare",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "min-area" | "area" | "ma" => Some(RunObjective::MinArea),
            "min-power" | "power" | "mp" => Some(RunObjective::MinPower),
            "compare" | "both" => Some(RunObjective::Compare),
            _ => None,
        }
    }
}

impl fmt::Display for RunObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Primary-input signal probability profile.
#[derive(Debug, Clone, PartialEq)]
pub enum PiSpec {
    /// One probability for every primary input (the paper uses 0.5).
    Uniform(f64),
    /// Explicit per-input probabilities (must match the PI count).
    PerInput(Vec<f64>),
}

impl PiSpec {
    /// Expands to one probability per primary input of `net`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] if an explicit profile's length does not match
    /// the circuit's PI count.
    pub fn expand(&self, net: &Network) -> Result<Vec<f64>, EngineError> {
        match self {
            PiSpec::Uniform(p) => Ok(vec![*p; net.inputs().len()]),
            PiSpec::PerInput(ps) => {
                if ps.len() != net.inputs().len() {
                    return Err(EngineError::Spec(format!(
                        "pi probability count {} does not match {} primary inputs",
                        ps.len(),
                        net.inputs().len()
                    )));
                }
                Ok(ps.clone())
            }
        }
    }
}

/// A complete, serializable description of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name (table row label). Not part of the cache key.
    pub name: String,
    /// Circuit to run on.
    pub source: CircuitSource,
    /// Which flow(s) to run.
    pub objective: RunObjective,
    /// PI signal probabilities.
    pub pi: PiSpec,
    /// Search + probability machinery configuration.
    pub flow: FlowConfig,
    /// Cell library.
    pub library: Library,
    /// Simulation length/seed.
    pub sim: SimConfig,
    /// Timed synthesis: resize to meet this fraction of the unsized MA
    /// delay (`None` = untimed).
    pub timing_fraction: Option<f64>,
    /// Series-stack penalty for the MP objective in timed runs (§4.2).
    pub mp_and_penalty: Option<f64>,
}

impl JobSpec {
    /// An untimed compare job over a suite circuit with paper defaults.
    pub fn suite(name: &str) -> Self {
        JobSpec {
            name: name.to_string(),
            source: CircuitSource::Suite(name.to_string()),
            objective: RunObjective::Compare,
            pi: PiSpec::Uniform(0.5),
            flow: FlowConfig::default(),
            library: Library::standard(),
            sim: SimConfig::default(),
            timing_fraction: None,
            mp_and_penalty: None,
        }
    }

    /// A job over an explicit network (serialized as inline BLIF).
    pub fn for_network(name: &str, net: &Network) -> Self {
        JobSpec {
            source: CircuitSource::BlifInline(domino_netlist::write_blif(net)),
            ..JobSpec::suite(name)
        }
    }

    /// Loads the circuit and pairs it with this spec as a runnable
    /// [`FlowJob`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] for unknown suite rows, [`EngineError::Io`] for
    /// unreadable BLIF paths, [`EngineError::Netlist`] for invalid BLIF.
    pub fn resolve(self) -> Result<FlowJob, EngineError> {
        let network = match &self.source {
            CircuitSource::Suite(name) => {
                let spec = domino_workloads::row_spec(name)
                    .ok_or_else(|| EngineError::Spec(format!("unknown suite circuit '{name}'")))?;
                domino_workloads::generate(&spec)?
            }
            CircuitSource::BlifPath(path) => {
                // Streaming ingestion: the file is parsed line-by-line, so
                // giant circuits never exist in memory as text.
                match domino_netlist::parse_blif_path(Path::new(path)) {
                    Ok(net) => net,
                    Err(domino_netlist::NetlistError::Io(msg)) => {
                        return Err(EngineError::Io(format!("reading '{path}': {msg}")))
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            CircuitSource::BlifInline(text) => domino_netlist::parse_blif(text)?,
        };
        Ok(FlowJob::new(self, network))
    }

    /// Canonical JSON of the *result-affecting* configuration — everything
    /// except the display name and the circuit source (the circuit itself is
    /// covered by the structural digest).
    pub fn config_json(&self) -> Json {
        Json::obj(vec![
            ("objective", Json::Str(self.objective.tag().to_string())),
            ("pi", pi_to_json(&self.pi)),
            ("flow", flow_to_json(&self.flow)),
            ("library", library_to_json(&self.library)),
            ("sim", sim_to_json(&self.sim)),
            ("timing_fraction", opt_num(self.timing_fraction)),
            ("mp_and_penalty", opt_num(self.mp_and_penalty)),
        ])
    }

    /// Serializes the full spec (including name and source) to JSON.
    pub fn to_json(&self) -> Json {
        let source = match &self.source {
            CircuitSource::Suite(n) => Json::obj(vec![("suite", Json::Str(n.clone()))]),
            CircuitSource::BlifPath(p) => Json::obj(vec![("blif_path", Json::Str(p.clone()))]),
            CircuitSource::BlifInline(t) => Json::obj(vec![("blif", Json::Str(t.clone()))]),
        };
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("source", source),
            ("config", self.config_json()),
        ])
    }

    /// Parses a spec serialized by [`JobSpec::to_json`]. Missing config
    /// fields fall back to defaults, so hand-written job files can stay
    /// short: `{"name":"x","source":{"blif_path":"x.blif"}}` is valid.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on malformed structure or unknown tags.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| EngineError::Spec("job spec missing 'name'".into()))?
            .to_string();
        let source = v
            .get("source")
            .ok_or_else(|| EngineError::Spec("job spec missing 'source'".into()))?;
        let source = if let Some(s) = source.get("suite").and_then(Json::as_str) {
            CircuitSource::Suite(s.to_string())
        } else if let Some(p) = source.get("blif_path").and_then(Json::as_str) {
            CircuitSource::BlifPath(p.to_string())
        } else if let Some(t) = source.get("blif").and_then(Json::as_str) {
            CircuitSource::BlifInline(t.to_string())
        } else {
            return Err(EngineError::Spec(
                "source must have 'suite', 'blif_path' or 'blif'".into(),
            ));
        };
        let defaults = JobSpec::suite(&name);
        let cfg = v.get("config");
        let get = |key: &str| cfg.and_then(|c| c.get(key));
        let objective = match get("objective").and_then(Json::as_str) {
            Some(tag) => RunObjective::from_tag(tag)
                .ok_or_else(|| EngineError::Spec(format!("unknown objective '{tag}'")))?,
            None => defaults.objective,
        };
        let pi = match get("pi") {
            Some(j) => pi_from_json(j)?,
            None => defaults.pi,
        };
        let flow = match get("flow") {
            Some(j) => flow_from_json(j)?,
            None => defaults.flow,
        };
        let library = match get("library") {
            Some(j) => library_from_json(j)?,
            None => defaults.library,
        };
        let sim = match get("sim") {
            Some(j) => sim_from_json(j)?,
            None => defaults.sim,
        };
        Ok(JobSpec {
            name,
            source,
            objective,
            pi,
            flow,
            library,
            sim,
            timing_fraction: get("timing_fraction").and_then(Json::as_f64),
            mp_and_penalty: get("mp_and_penalty").and_then(Json::as_f64),
        })
    }
}

/// A [`JobSpec`] paired with its resolved circuit and content-address.
#[derive(Debug, Clone)]
pub struct FlowJob {
    /// The job description.
    pub spec: JobSpec,
    /// The circuit to run.
    pub network: Network,
    key: String,
}

impl FlowJob {
    /// Pairs a spec with an already-built network (no source resolution).
    pub fn new(spec: JobSpec, network: Network) -> Self {
        let key = cache_key(&network, &spec);
        FlowJob { spec, network, key }
    }

    /// The content-address of this job: a stable hex digest of the
    /// network's structure and every result-affecting spec field. Two jobs
    /// with equal keys produce equal [`FlowOutcome`]s (modulo the display
    /// name, which is not hashed).
    pub fn cache_key(&self) -> &str {
        &self.key
    }
}

/// Computes the content-address for running `spec` on `net`.
///
/// `sim.threads` is canonicalized away first: it is an execution knob —
/// the sharded kernels produce bit-identical results for every thread
/// count (pinned by the sim crate's invariance tests) — so jobs differing
/// only in thread count share one cache entry. `sim.shards` stays in the
/// key: the shard count defines the vector streams and therefore the
/// measured bits.
pub fn cache_key(net: &Network, spec: &JobSpec) -> String {
    let mut spec = spec.clone();
    spec.sim.threads = 1;
    let config = spec.config_json().serialize();
    let net_digest = net.structural_digest();
    // Two independent FNV-1a passes (salted differently) give a 128-bit
    // address; collisions are negligible at any realistic cache size.
    let lo = fnv1a64(config.as_bytes(), net_digest ^ 0x9E37_79B9_7F4A_7C15);
    let hi = fnv1a64(
        config.as_bytes(),
        net_digest.rotate_left(31) ^ 0x517C_C1B7_2722_0A95,
    );
    format!("{hi:016x}{lo:016x}")
}

/// Computes the content-address of a job's *warm state* — the built BDDs
/// and converged probability table that [`crate::SnapshotStore`]
/// persists across restarts.
///
/// Deliberately **narrower** than [`cache_key`]: the kernel stage depends
/// only on the circuit structure, the probability configuration, and the
/// primary-input probabilities. Jobs that differ in objective, library,
/// simulation settings, timing fraction or MP penalty therefore share one
/// snapshot — the probe run that derives a clock target warms the very
/// snapshot the timed compare run loads. PI probabilities are hashed by
/// exact bit pattern, matching the bit-identity contract of the stored
/// probability table.
pub fn snapshot_key(net: &Network, prob: &ProbabilityConfig, pi_probs: &[f64]) -> String {
    let mut config = probability_to_json(prob).serialize();
    config.push('\n');
    for &p in pi_probs {
        config.push_str(&format!("{:016x}", p.to_bits()));
    }
    let net_digest = net.structural_digest();
    let lo = fnv1a64(config.as_bytes(), net_digest ^ 0x9E37_79B9_7F4A_7C15);
    let hi = fnv1a64(
        config.as_bytes(),
        net_digest.rotate_left(31) ^ 0x517C_C1B7_2722_0A95,
    );
    format!("{hi:016x}{lo:016x}")
}

fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// Summary of a dynamic variable reordering (sifting) campaign, recorded
/// when a flow ran with a reorder mode other than `off`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderInfo {
    /// The configured mode (`auto` or `sift`).
    pub mode: ReorderMode,
    /// Adjacent level swaps performed across all sifting passes.
    pub swaps: u64,
    /// Reachable BDD nodes before the first sifting pass.
    pub nodes_before: usize,
    /// The final variable order, level 0 first (variable indices).
    pub final_order: Vec<usize>,
}

impl ReorderInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", Json::Str(self.mode.as_str().into())),
            ("swaps", Json::Num(self.swaps as f64)),
            ("nodes_before", Json::Num(self.nodes_before as f64)),
            (
                "final_order",
                Json::Arr(
                    self.final_order
                        .iter()
                        .map(|&v| Json::Num(v as f64))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("mode"))?
            .parse::<ReorderMode>()
            .map_err(EngineError::Spec)?;
        let final_order = v
            .get("final_order")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("final_order"))?
            .iter()
            .map(|j| j.as_usize().ok_or_else(|| missing("final_order")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReorderInfo {
            mode,
            swaps: req_usize(v, "swaps")? as u64,
            nodes_before: req_usize(v, "nodes_before")?,
            final_order,
        })
    }
}

/// BDD kernel statistics of one flow side: how big the shared BDDs were
/// and how the unique table / operation cache performed while building
/// them. Surfaced by `dominoc run --stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BddKernelStats {
    /// Shared BDD node count used for the probability computation.
    pub nodes: usize,
    /// Unique-table lookups answered by hash-consing.
    pub unique_hits: u64,
    /// Unique-table lookups that interned a fresh node.
    pub unique_misses: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Operation-cache misses.
    pub cache_misses: u64,
    /// Dynamic reordering summary; `None` when the flow ran with
    /// `reorder: off` (and in every outcome cached before reordering
    /// existed).
    pub reorder: Option<ReorderInfo>,
}

impl BddKernelStats {
    /// Snapshots a manager's [`domino_bdd::BddStats`] counters, paired
    /// with the flow's shared BDD node count (the §4.2.2 metric — not the
    /// manager's arena size).
    pub fn from_manager(stats: &domino_bdd::BddStats, nodes: usize) -> Self {
        BddKernelStats {
            nodes,
            unique_hits: stats.unique_hits,
            unique_misses: stats.unique_misses,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            reorder: None,
        }
    }

    /// Attaches a reordering summary (builder style, used by the runner).
    #[must_use]
    pub fn with_reorder(mut self, reorder: Option<ReorderInfo>) -> Self {
        self.reorder = reorder;
        self
    }

    /// Unique-table hit fraction, or `None` before any lookups. (Defined
    /// here as well as on [`domino_bdd::BddStats`] because this type is
    /// what outcome JSON deserializes back into.)
    pub fn unique_hit_rate(&self) -> Option<f64> {
        hit_rate(self.unique_hits, self.unique_misses)
    }

    /// Operation-cache hit fraction, or `None` before any lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        hit_rate(self.cache_hits, self.cache_misses)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("nodes", Json::Num(self.nodes as f64)),
            ("unique_hits", Json::Num(self.unique_hits as f64)),
            ("unique_misses", Json::Num(self.unique_misses as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
        ];
        // Emitted only when reordering ran, so `reorder: off` outcomes stay
        // byte-identical to pre-reordering builds.
        if let Some(reorder) = &self.reorder {
            fields.push(("reorder", reorder.to_json()));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(BddKernelStats {
            nodes: req_usize(v, "nodes")?,
            unique_hits: req_usize(v, "unique_hits")? as u64,
            unique_misses: req_usize(v, "unique_misses")? as u64,
            cache_hits: req_usize(v, "cache_hits")? as u64,
            cache_misses: req_usize(v, "cache_misses")? as u64,
            reorder: match v.get("reorder") {
                None | Some(Json::Null) => None,
                Some(j) => Some(ReorderInfo::from_json(j)?),
            },
        })
    }
}

fn hit_rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

fn sim_stats_to_json(stats: &SimStats) -> Json {
    Json::obj(vec![
        ("vectors", Json::Num(stats.vectors as f64)),
        ("words", Json::Num(stats.words as f64)),
        ("measured_words", Json::Num(stats.measured_words as f64)),
        ("shards", Json::Num(stats.shards as f64)),
    ])
}

fn sim_stats_from_json(v: &Json) -> Result<SimStats, EngineError> {
    Ok(SimStats {
        vectors: req_usize(v, "vectors")? as u64,
        words: req_usize(v, "words")? as u64,
        measured_words: req_usize(v, "measured_words")? as u64,
        // Optional so outcomes cached before the sharded engine still parse.
        shards: v.get("shards").and_then(Json::as_usize).unwrap_or(0) as u64,
    })
}

/// One flow variant's result (the MA or MP side of a table row).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveResult {
    /// Mapped standard-cell count (the "Size" column).
    pub size: usize,
    /// Simulated capacitive current, mA.
    pub cap_ma: f64,
    /// Simulated short-circuit current, mA.
    pub short_circuit_ma: f64,
    /// Simulated leakage current, mA.
    pub leakage_ma: f64,
    /// Estimated (BDD) switching power, for reference.
    pub estimated_switching: f64,
    /// Worst arrival after mapping (and sizing, if timed), ps.
    pub worst_arrival_ps: f64,
    /// Whether the timing constraint was met (timed runs).
    pub timing_met: bool,
    /// Search evaluations performed.
    pub evaluations: usize,
    /// Search commits performed.
    pub commits: usize,
    /// The final phase assignment as a `+`/`-` string, output order.
    pub assignment: String,
    /// BDD kernel statistics of this side's probability computation.
    pub bdd: BddKernelStats,
    /// Packed-simulation work accounting (vectors simulated, words
    /// evaluated) of this side's power measurement.
    pub sim: SimStats,
}

impl ObjectiveResult {
    /// Total simulated current, mA (the "Pwr" column).
    pub fn power_ma(&self) -> f64 {
        self.cap_ma + self.short_circuit_ma + self.leakage_ma
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size", Json::Num(self.size as f64)),
            ("cap_ma", Json::Num(self.cap_ma)),
            ("short_circuit_ma", Json::Num(self.short_circuit_ma)),
            ("leakage_ma", Json::Num(self.leakage_ma)),
            ("estimated_switching", Json::Num(self.estimated_switching)),
            ("worst_arrival_ps", Json::Num(self.worst_arrival_ps)),
            ("timing_met", Json::Bool(self.timing_met)),
            ("evaluations", Json::Num(self.evaluations as f64)),
            ("commits", Json::Num(self.commits as f64)),
            ("assignment", Json::Str(self.assignment.clone())),
            ("bdd", self.bdd.to_json()),
            ("sim", sim_stats_to_json(&self.sim)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        Ok(ObjectiveResult {
            size: req_usize(v, "size")?,
            cap_ma: req_f64(v, "cap_ma")?,
            short_circuit_ma: req_f64(v, "short_circuit_ma")?,
            leakage_ma: req_f64(v, "leakage_ma")?,
            estimated_switching: req_f64(v, "estimated_switching")?,
            worst_arrival_ps: req_f64(v, "worst_arrival_ps")?,
            timing_met: req_bool(v, "timing_met")?,
            evaluations: req_usize(v, "evaluations")?,
            commits: req_usize(v, "commits")?,
            assignment: v
                .get("assignment")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("assignment"))?
                .to_string(),
            // Optional so outcomes cached before the kernel stats existed
            // still parse.
            bdd: match v.get("bdd") {
                None | Some(Json::Null) => BddKernelStats::default(),
                Some(j) => BddKernelStats::from_json(j)?,
            },
            // Optional so outcomes cached before the packed engine existed
            // still parse.
            sim: match v.get("sim") {
                None | Some(Json::Null) => SimStats::default(),
                Some(j) => sim_stats_from_json(j)?,
            },
        })
    }
}

/// Everything one job produced. Pure data: cacheable, comparable, printable.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// Display name from the spec.
    pub name: String,
    /// The job's content-address (cache key).
    pub key: String,
    /// Primary input count of the circuit.
    pub pis: usize,
    /// Primary output count of the circuit.
    pub pos: usize,
    /// Minimum-area result (`objective` = `MinArea` or `Compare`).
    pub ma: Option<ObjectiveResult>,
    /// Minimum-power result (`objective` = `MinPower` or `Compare`).
    pub mp: Option<ObjectiveResult>,
    /// The derived clock target for timed compare runs, ps.
    pub clock_ps: Option<f64>,
}

impl FlowOutcome {
    /// `% Area Pen.` column: MP size overhead relative to MA.
    /// `None` unless both sides ran.
    pub fn area_penalty_pct(&self) -> Option<f64> {
        let (ma, mp) = (self.ma.as_ref()?, self.mp.as_ref()?);
        Some(100.0 * (mp.size as f64 - ma.size as f64) / ma.size as f64)
    }

    /// `% Pwr Sav.` column: MP power saving relative to MA.
    /// `None` unless both sides ran.
    pub fn power_saving_pct(&self) -> Option<f64> {
        let (ma, mp) = (self.ma.as_ref()?, self.mp.as_ref()?);
        Some(100.0 * (ma.power_ma() - mp.power_ma()) / ma.power_ma())
    }

    /// Serializes to JSON (deterministic; see the cache's byte-identity
    /// guarantee).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("key", Json::Str(self.key.clone())),
            ("pis", Json::Num(self.pis as f64)),
            ("pos", Json::Num(self.pos as f64)),
            (
                "ma",
                self.ma
                    .as_ref()
                    .map(ObjectiveResult::to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "mp",
                self.mp
                    .as_ref()
                    .map(ObjectiveResult::to_json)
                    .unwrap_or(Json::Null),
            ),
            ("clock_ps", opt_num(self.clock_ps)),
        ])
    }

    /// Parses an outcome serialized by [`FlowOutcome::to_json`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let side = |key: &str| -> Result<Option<ObjectiveResult>, EngineError> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => Ok(Some(ObjectiveResult::from_json(j)?)),
            }
        };
        Ok(FlowOutcome {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("name"))?
                .to_string(),
            key: v
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("key"))?
                .to_string(),
            pis: req_usize(v, "pis")?,
            pos: req_usize(v, "pos")?,
            ma: side("ma")?,
            mp: side("mp")?,
            clock_ps: v.get("clock_ps").and_then(Json::as_f64),
        })
    }

    /// Parses an outcome from JSON text.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on malformed JSON or missing fields.
    pub fn from_json_text(text: &str) -> Result<Self, EngineError> {
        let v = parse(text).map_err(|e| EngineError::Spec(e.to_string()))?;
        FlowOutcome::from_json(&v)
    }
}

/// Renders a phase assignment as the `+`/`-` string stored in outcomes.
pub fn assignment_string(pa: &PhaseAssignment) -> String {
    pa.iter()
        .map(|p| if p == Phase::Negative { '-' } else { '+' })
        .collect()
}

// ---- JSON codecs for the foreign configuration structs ----

fn opt_num(v: Option<f64>) -> Json {
    v.map(Json::Num).unwrap_or(Json::Null)
}

fn missing(key: &str) -> EngineError {
    EngineError::Spec(format!("missing or mistyped field '{key}'"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, EngineError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| missing(key))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, EngineError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| missing(key))
}

/// Serializes a `u64` exactly: as a decimal string. `Json::Num` carries an
/// `f64`, which silently rounds integers above 2^53 — unacceptable for
/// seeds, which feed both the flow and the cache key.
fn u64_to_json(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn u64_from_json(v: &Json) -> Option<u64> {
    match v {
        Json::Str(s) => s.parse().ok(),
        // Tolerated for hand-written job files; exact for values < 2^53.
        _ => v.as_u64(),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, EngineError> {
    v.get(key)
        .and_then(u64_from_json)
        .ok_or_else(|| missing(key))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, EngineError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| missing(key))
}

fn pi_to_json(pi: &PiSpec) -> Json {
    match pi {
        PiSpec::Uniform(p) => Json::obj(vec![("uniform", Json::Num(*p))]),
        PiSpec::PerInput(ps) => Json::obj(vec![(
            "per_input",
            Json::Arr(ps.iter().map(|&p| Json::Num(p)).collect()),
        )]),
    }
}

fn pi_from_json(v: &Json) -> Result<PiSpec, EngineError> {
    if let Some(p) = v.get("uniform").and_then(Json::as_f64) {
        return Ok(PiSpec::Uniform(p));
    }
    if let Some(arr) = v.get("per_input").and_then(Json::as_arr) {
        let ps = arr
            .iter()
            .map(|j| j.as_f64().ok_or_else(|| missing("per_input")))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(PiSpec::PerInput(ps));
    }
    Err(EngineError::Spec(
        "pi must have 'uniform' or 'per_input'".into(),
    ))
}

fn ordering_to_json(o: &OrderingChoice) -> Json {
    match o {
        OrderingChoice::Paper => Json::Str("paper".into()),
        OrderingChoice::Topological => Json::Str("topological".into()),
        OrderingChoice::Random(seed) => Json::obj(vec![("random", u64_to_json(*seed))]),
        OrderingChoice::Custom(order) => Json::obj(vec![(
            "custom",
            Json::Arr(order.iter().map(|&i| Json::Num(i as f64)).collect()),
        )]),
    }
}

fn ordering_from_json(v: &Json) -> Result<OrderingChoice, EngineError> {
    match v {
        Json::Str(s) if s == "paper" => Ok(OrderingChoice::Paper),
        Json::Str(s) if s == "topological" => Ok(OrderingChoice::Topological),
        _ => {
            if let Some(seed) = v.get("random").and_then(u64_from_json) {
                return Ok(OrderingChoice::Random(seed));
            }
            if let Some(arr) = v.get("custom").and_then(Json::as_arr) {
                let order = arr
                    .iter()
                    .map(|j| j.as_usize().ok_or_else(|| missing("custom")))
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok(OrderingChoice::Custom(order));
            }
            Err(EngineError::Spec("unknown BDD ordering".into()))
        }
    }
}

/// Canonical JSON of the probability-stage configuration. Shared by the
/// flow section of the cache key and by [`snapshot_key`], so the two
/// content addresses cannot disagree about what the kernel stage depends
/// on.
fn probability_to_json(prob: &ProbabilityConfig) -> Json {
    let mut probability = vec![
        ("ordering", ordering_to_json(&prob.ordering)),
        ("mfvs_symmetry", Json::Bool(prob.mfvs.symmetry)),
        (
            "mfvs_descending_weight",
            Json::Bool(prob.mfvs.descending_weight),
        ),
        ("sweeps", Json::Num(prob.sweeps as f64)),
        (
            "cut_latch_probability",
            Json::Num(prob.cut_latch_probability),
        ),
        (
            "convergence_tolerance",
            Json::Num(prob.convergence_tolerance),
        ),
    ];
    // Reordering is result-affecting, so it must join the cache key — but
    // only when active, so `reorder: off` specs keep the exact content
    // address (and cached outcomes) they had before reordering existed.
    if prob.reorder != ReorderMode::Off {
        probability.push(("reorder", Json::Str(prob.reorder.as_str().into())));
    }
    Json::obj(probability)
}

fn flow_to_json(flow: &FlowConfig) -> Json {
    Json::obj(vec![
        ("probability", probability_to_json(&flow.probability)),
        (
            "power",
            Json::obj(vec![
                ("gate_cap", Json::Num(flow.power.model.gate_cap)),
                ("and_penalty", Json::Num(flow.power.model.and_penalty)),
                ("or_penalty", Json::Num(flow.power.model.or_penalty)),
                ("inverter_cap", Json::Num(flow.power.model.inverter_cap)),
                ("always_commit", Json::Bool(flow.power.always_commit)),
                ("k_guided", Json::Bool(flow.power.k_guided)),
                ("seed", u64_to_json(flow.power.seed)),
                (
                    "refinement_passes",
                    Json::Num(flow.power.refinement_passes as f64),
                ),
            ]),
        ),
        (
            "area",
            Json::obj(vec![
                (
                    "exhaustive_limit",
                    Json::Num(flow.area.exhaustive_limit as f64),
                ),
                ("max_passes", Json::Num(flow.area.max_passes as f64)),
            ]),
        ),
    ])
}

fn flow_from_json(v: &Json) -> Result<FlowConfig, EngineError> {
    let p = v.get("probability").ok_or_else(|| missing("probability"))?;
    let pw = v.get("power").ok_or_else(|| missing("power"))?;
    let a = v.get("area").ok_or_else(|| missing("area"))?;
    Ok(FlowConfig {
        probability: ProbabilityConfig {
            ordering: ordering_from_json(p.get("ordering").ok_or_else(|| missing("ordering"))?)?,
            mfvs: MfvsConfig {
                symmetry: req_bool(p, "mfvs_symmetry")?,
                descending_weight: req_bool(p, "mfvs_descending_weight")?,
            },
            sweeps: req_usize(p, "sweeps")?,
            cut_latch_probability: req_f64(p, "cut_latch_probability")?,
            // Optional so short hand-written job files stay valid.
            convergence_tolerance: p
                .get("convergence_tolerance")
                .and_then(Json::as_f64)
                .unwrap_or_default(),
            // Optional: absent means `off` (the historical behaviour).
            reorder: match p.get("reorder").and_then(Json::as_str) {
                None => ReorderMode::Off,
                Some(s) => s.parse().map_err(EngineError::Spec)?,
            },
        },
        power: MinPowerConfig {
            model: PowerModel {
                gate_cap: req_f64(pw, "gate_cap")?,
                and_penalty: req_f64(pw, "and_penalty")?,
                or_penalty: req_f64(pw, "or_penalty")?,
                inverter_cap: req_f64(pw, "inverter_cap")?,
            },
            always_commit: req_bool(pw, "always_commit")?,
            k_guided: req_bool(pw, "k_guided")?,
            seed: req_u64(pw, "seed")?,
            refinement_passes: req_usize(pw, "refinement_passes")?,
        },
        area: MinAreaConfig {
            exhaustive_limit: req_usize(a, "exhaustive_limit")?,
            max_passes: req_usize(a, "max_passes")?,
        },
    })
}

fn library_to_json(lib: &Library) -> Json {
    Json::obj(vec![
        ("max_fanin", Json::Num(lib.max_fanin as f64)),
        ("and_base_ps", Json::Num(lib.and_base_ps)),
        ("and_stack_ps", Json::Num(lib.and_stack_ps)),
        ("or_base_ps", Json::Num(lib.or_base_ps)),
        ("or_stack_ps", Json::Num(lib.or_stack_ps)),
        ("inv_ps", Json::Num(lib.inv_ps)),
        ("dff_clk_to_q_ps", Json::Num(lib.dff_clk_to_q_ps)),
        ("load_ps_per_ff", Json::Num(lib.load_ps_per_ff)),
        ("input_cap_ff", Json::Num(lib.input_cap_ff)),
        ("self_cap_ff", Json::Num(lib.self_cap_ff)),
        ("clock_cap_ff", Json::Num(lib.clock_cap_ff)),
        ("leak_ua", Json::Num(lib.leak_ua)),
        ("vdd", Json::Num(lib.vdd)),
        ("clock_mhz", Json::Num(lib.clock_mhz)),
    ])
}

fn library_from_json(v: &Json) -> Result<Library, EngineError> {
    Ok(Library {
        max_fanin: req_usize(v, "max_fanin")?,
        and_base_ps: req_f64(v, "and_base_ps")?,
        and_stack_ps: req_f64(v, "and_stack_ps")?,
        or_base_ps: req_f64(v, "or_base_ps")?,
        or_stack_ps: req_f64(v, "or_stack_ps")?,
        inv_ps: req_f64(v, "inv_ps")?,
        dff_clk_to_q_ps: req_f64(v, "dff_clk_to_q_ps")?,
        load_ps_per_ff: req_f64(v, "load_ps_per_ff")?,
        input_cap_ff: req_f64(v, "input_cap_ff")?,
        self_cap_ff: req_f64(v, "self_cap_ff")?,
        clock_cap_ff: req_f64(v, "clock_cap_ff")?,
        leak_ua: req_f64(v, "leak_ua")?,
        vdd: req_f64(v, "vdd")?,
        clock_mhz: req_f64(v, "clock_mhz")?,
    })
}

fn sim_to_json(sim: &SimConfig) -> Json {
    Json::obj(vec![
        ("cycles", Json::Num(sim.cycles as f64)),
        ("warmup", Json::Num(sim.warmup as f64)),
        ("seed", u64_to_json(sim.seed)),
        (
            "adaptive_tol_ppm",
            Json::Num(f64::from(sim.adaptive_tol_ppm)),
        ),
        ("shards", Json::Num(f64::from(sim.shards))),
        ("threads", Json::Num(sim.threads as f64)),
    ])
}

fn sim_from_json(v: &Json) -> Result<SimConfig, EngineError> {
    let defaults = SimConfig::default();
    Ok(SimConfig {
        cycles: req_usize(v, "cycles")?,
        warmup: req_usize(v, "warmup")?,
        seed: req_u64(v, "seed")?,
        // Optional so job files written before adaptive mode stay valid —
        // but a present-and-malformed value must fail loudly like every
        // other field, not silently disable adaptive mode.
        adaptive_tol_ppm: match v.get("adaptive_tol_ppm") {
            None | Some(Json::Null) => 0,
            Some(j) => j
                .as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| missing("adaptive_tol_ppm"))?,
        },
        // Optional (pre-sharding job files), same fail-loudly rule.
        shards: match v.get("shards") {
            None | Some(Json::Null) => defaults.shards,
            Some(j) => j
                .as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| missing("shards"))?,
        },
        threads: match v.get("threads") {
            None | Some(Json::Null) => defaults.threads,
            Some(j) => j.as_usize().ok_or_else(|| missing("threads"))?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrip() {
        let mut spec = JobSpec::suite("frg1");
        spec.timing_fraction = Some(0.85);
        spec.mp_and_penalty = Some(2.5);
        spec.flow.power.refinement_passes = 3;
        spec.flow.probability.ordering = OrderingChoice::Random(9);
        // Above 2^53: would be silently rounded if seeds went through f64.
        spec.sim.seed = 9_007_199_254_740_993;
        spec.sim.shards = 4;
        spec.sim.threads = 3;
        spec.pi = PiSpec::PerInput(vec![0.25, 0.75]);
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_spec_json_uses_defaults() {
        let v = crate::json::parse(r#"{"name":"x","source":{"suite":"frg1"}}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.objective, RunObjective::Compare);
        assert_eq!(spec.flow, FlowConfig::default());
        assert_eq!(spec.pi, PiSpec::Uniform(0.5));
    }

    #[test]
    fn cache_key_separates_config_and_circuit() {
        let job = JobSpec::suite("frg1").resolve().unwrap();
        let same = JobSpec::suite("frg1").resolve().unwrap();
        assert_eq!(job.cache_key(), same.cache_key());

        let mut timed_spec = JobSpec::suite("frg1");
        timed_spec.timing_fraction = Some(0.85);
        let timed = timed_spec.resolve().unwrap();
        assert_ne!(job.cache_key(), timed.cache_key());

        let other = JobSpec::suite("x1").resolve().unwrap();
        assert_ne!(job.cache_key(), other.cache_key());
    }

    #[test]
    fn sim_threads_do_not_split_the_cache() {
        // threads is execution-only: results are thread-invariant, so the
        // key canonicalizes it away...
        let a = JobSpec::suite("frg1").resolve().unwrap();
        let mut threaded_spec = JobSpec::suite("frg1");
        threaded_spec.sim.threads = 8;
        let b = threaded_spec.resolve().unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // ...while shards define the vector streams and stay in the key.
        let mut sharded_spec = JobSpec::suite("frg1");
        sharded_spec.sim.shards = 1;
        let c = sharded_spec.resolve().unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn snapshot_key_is_narrower_than_cache_key() {
        let job = JobSpec::suite("frg1").resolve().unwrap();
        let pi = job.spec.pi.expand(&job.network).unwrap();
        let base = snapshot_key(&job.network, &job.spec.flow.probability, &pi);

        // Knobs downstream of the kernel stage split the cache key but
        // share the snapshot: the probe run warms the timed run.
        let mut timed_spec = JobSpec::suite("frg1");
        timed_spec.timing_fraction = Some(0.85);
        timed_spec.mp_and_penalty = Some(2.5);
        timed_spec.objective = RunObjective::MinPower;
        timed_spec.sim.cycles = 16;
        let timed = timed_spec.resolve().unwrap();
        assert_ne!(job.cache_key(), timed.cache_key());
        assert_eq!(
            snapshot_key(&timed.network, &timed.spec.flow.probability, &pi),
            base
        );

        // Kernel-stage knobs split the snapshot key.
        let mut sifted = job.spec.flow.probability.clone();
        sifted.reorder = ReorderMode::Sift;
        assert_ne!(snapshot_key(&job.network, &sifted, &pi), base);
        let mut skewed = pi.clone();
        skewed[0] = 0.25;
        assert_ne!(
            snapshot_key(&job.network, &job.spec.flow.probability, &skewed),
            base
        );
        let other = JobSpec::suite("x1").resolve().unwrap();
        let other_pi = other.spec.pi.expand(&other.network).unwrap();
        assert_ne!(
            snapshot_key(&other.network, &other.spec.flow.probability, &other_pi),
            base
        );
    }

    #[test]
    fn display_name_is_not_part_of_the_key() {
        let a = JobSpec::suite("frg1").resolve().unwrap();
        let mut renamed_spec = JobSpec::suite("frg1");
        renamed_spec.name = "row 5".into();
        let b = renamed_spec.resolve().unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn inline_blif_and_suite_share_content_address() {
        // Content addressing: the same circuit text reaches the same key
        // regardless of where it came from.
        let via_suite = JobSpec::suite("frg1").resolve().unwrap();
        let spec = JobSpec::for_network("frg1", &via_suite.network);
        let via_blif = spec.resolve().unwrap();
        assert_eq!(via_suite.cache_key(), via_blif.cache_key());
    }

    #[test]
    fn outcome_json_roundtrip() {
        let outcome = FlowOutcome {
            name: "frg1".into(),
            key: "ab".repeat(16),
            pis: 31,
            pos: 3,
            ma: Some(ObjectiveResult {
                size: 98,
                cap_ma: 1.25,
                short_circuit_ma: 0.014,
                leakage_ma: 0.002,
                estimated_switching: 40.5,
                worst_arrival_ps: 310.0,
                timing_met: true,
                evaluations: 8,
                commits: 2,
                assignment: "+-+".into(),
                bdd: BddKernelStats {
                    nodes: 50,
                    unique_hits: 120,
                    unique_misses: 48,
                    cache_hits: 30,
                    cache_misses: 90,
                    reorder: Some(ReorderInfo {
                        mode: ReorderMode::Sift,
                        swaps: 17,
                        nodes_before: 80,
                        final_order: vec![2, 0, 1],
                    }),
                },
                sim: SimStats {
                    vectors: 4096,
                    words: 80,
                    measured_words: 64,
                    shards: 8,
                },
            }),
            mp: None,
            clock_ps: Some(263.5),
        };
        let text = outcome.to_json().serialize();
        assert_eq!(FlowOutcome::from_json_text(&text).unwrap(), outcome);
        // Determinism: re-serializing the parsed value is byte-identical.
        assert_eq!(
            FlowOutcome::from_json_text(&text)
                .unwrap()
                .to_json()
                .serialize(),
            text
        );
    }

    #[test]
    fn unknown_suite_row_is_a_spec_error() {
        let err = JobSpec::suite("nonesuch").resolve().unwrap_err();
        assert!(matches!(err, EngineError::Spec(_)), "{err}");
    }

    #[test]
    fn assignment_string_renders_phases() {
        let pa = PhaseAssignment::from_bits(4, 0b0101);
        let s = assignment_string(&pa);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c == '+' || c == '-'));
    }
}
