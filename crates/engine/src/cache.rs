//! Content-addressed result cache: `cache_key → FlowOutcome`.
//!
//! Keys come from [`FlowJob::cache_key`](crate::FlowJob::cache_key) — a
//! stable 128-bit digest of the circuit structure and every
//! result-affecting spec field — so a hit is *sound*: the cached outcome is
//! the one the flow would recompute. Outcomes are stored as the engine's
//! deterministic JSON, which makes a warm hit byte-identical to a cold
//! recomputation (pinned by the engine's cache tests).
//!
//! Two backends share one front door:
//!
//! * **in-memory** — a mutexed map, always on;
//! * **on-disk** (optional) — one `<key>.json` file per entry under a cache
//!   directory, loaded through the memory layer on first touch, shared
//!   between processes and `dominoc` invocations.
//!
//! The on-disk entries follow the workspace-wide disk discipline in
//! [`domino_store::disk`] — checksummed self-verifying files, atomic
//! temp+rename stores, orphan-temp sweeps at open, quarantine of corrupt
//! entries, oldest-first byte-budget eviction — shared verbatim with the
//! warm-state [`SnapshotStore`](domino_store::SnapshotStore) so the two
//! persistent stores cannot drift apart in crash safety.
//!
//! All counters are atomics; the cache is `Sync` and shared by engine
//! workers via `Arc`.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use domino_store::disk::{self, DiskProfile, DiskRead};

use crate::error::EngineError;
use crate::job::FlowOutcome;

/// Disk discipline for result-cache entries: `dominocache1` magic, `.json`
/// extension, `engine.cache.*` failpoints. Files without the magic are
/// legacy plain-JSON entries from before checksumming; they pass through
/// for the parser to judge, so upgrading a deployment does not cold-start
/// its caches.
const CACHE_PROFILE: DiskProfile = DiskProfile {
    magic: "dominocache1 ",
    entry_ext: "json",
    read_failpoint: "engine.cache.disk_read",
    write_failpoint: "engine.cache.disk_write",
    crash_failpoint: "engine.cache.crash_rename",
    legacy_passthrough: true,
};

/// How a lookup participates in the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountAs {
    /// Hits and misses both counted ([`ResultCache::get`]).
    Full,
    /// Hits counted, misses not ([`ResultCache::probe`]).
    HitsOnly,
    /// Nothing counted ([`ResultCache::peek`]).
    Silent,
}

/// Monotonic hit/miss/store counters (snapshot via [`ResultCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub memory_hits: u64,
    /// Lookups answered from the disk backend (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing — each one is a flow recomputation.
    pub misses: u64,
    /// Outcomes inserted.
    pub stores: u64,
    /// Entries evicted from memory to honor the entry budget.
    pub memory_evictions: u64,
    /// Disk entries removed to honor the byte budget.
    pub disk_evictions: u64,
    /// Corrupt disk entries detected (bad checksum, torn bytes, garbage
    /// JSON) and quarantined — each one was served as a miss, never as
    /// data.
    pub corrupt_evictions: u64,
}

impl CacheStats {
    /// Total hits across both backends.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }
}

/// The in-memory layer: a map from key to outcome plus a recency index,
/// giving O(log n) least-recently-used eviction without external crates.
///
/// Each entry carries the logical timestamp of its last touch; `recency`
/// maps timestamps back to keys, so the least-recently-used entry is the
/// first key in the `BTreeMap`. Timestamps are unique (the clock only
/// moves forward), so the index never collides.
#[derive(Debug, Default)]
struct MemStore {
    map: HashMap<String, (u64, FlowOutcome)>,
    recency: BTreeMap<u64, String>,
    clock: u64,
}

impl MemStore {
    /// Looks up `key`, refreshing its recency on a hit.
    fn touch(&mut self, key: &str) -> Option<FlowOutcome> {
        let stamp = self.map.get(key)?.0;
        self.recency.remove(&stamp);
        self.clock += 1;
        self.recency.insert(self.clock, key.to_string());
        let entry = self.map.get_mut(key).expect("entry just found");
        entry.0 = self.clock;
        Some(entry.1.clone())
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries down to `budget` (0 = unbounded). Returns how many were
    /// evicted.
    fn insert(&mut self, key: String, outcome: FlowOutcome, budget: usize) -> u64 {
        if let Some((old_stamp, _)) = self.map.get(&key) {
            let old_stamp = *old_stamp;
            self.recency.remove(&old_stamp);
        }
        self.clock += 1;
        self.recency.insert(self.clock, key.clone());
        self.map.insert(key, (self.clock, outcome));
        let mut evicted = 0;
        while budget > 0 && self.map.len() > budget {
            let lru_stamp = *self.recency.keys().next().expect("map non-empty");
            let victim = self.recency.remove(&lru_stamp).expect("stamp present");
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

/// Thread-safe content-addressed store for [`FlowOutcome`]s.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<MemStore>,
    disk_dir: Option<PathBuf>,
    /// Maximum entries resident in memory; 0 means unbounded.
    memory_entry_budget: usize,
    /// Maximum total bytes of `.json` entries on disk; 0 means unbounded.
    disk_byte_budget: u64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    memory_evictions: AtomicU64,
    disk_evictions: AtomicU64,
    corrupt_evictions: AtomicU64,
}

impl ResultCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(MemStore::default()),
            disk_dir: None,
            memory_entry_budget: 0,
            disk_byte_budget: 0,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            memory_evictions: AtomicU64::new(0),
            disk_evictions: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` (created if missing): every entry is also
    /// written to `dir/<key>.json` and lookups fall back to disk on a
    /// memory miss. Orphaned temp files — a writer killed between its temp
    /// write and the rename — are swept at open, so a restarted process
    /// starts from a consistent directory of complete entries only.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] if the directory cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| EngineError::Io(format!("creating cache dir '{}': {e}", dir.display())))?;
        disk::sweep_orphan_temps(&dir);
        Ok(ResultCache {
            disk_dir: Some(dir),
            ..ResultCache::in_memory()
        })
    }

    /// The disk directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Caps the number of entries resident in memory: inserting beyond
    /// the budget evicts least-recently-used entries. `0` (the default)
    /// means unbounded. Entries evicted from memory remain on disk (if a
    /// disk backend exists) and are re-promoted on their next lookup.
    pub fn with_memory_entry_budget(mut self, entries: usize) -> Self {
        self.memory_entry_budget = entries;
        self
    }

    /// Caps the total size of on-disk `.json` entries: after a store
    /// pushes the directory over `bytes`, oldest entries (by modification
    /// time) are deleted until it fits, never evicting the entry just
    /// written. `0` (the default) means unbounded.
    pub fn with_disk_byte_budget(mut self, bytes: u64) -> Self {
        self.disk_byte_budget = bytes;
        self
    }

    /// Looks up an outcome. Disk hits are promoted into memory.
    pub fn get(&self, key: &str) -> Option<FlowOutcome> {
        self.lookup(key, CountAs::Full)
    }

    /// Like [`ResultCache::get`], but a miss is **not** counted (hits
    /// are). For opportunistic checks that fall back to the full compute
    /// path on a miss — where that path will perform the counting
    /// [`ResultCache::get`] itself — so `misses` stays "number of flow
    /// recomputations" and `hits()` stays "number of cache-answered
    /// requests", with no double counting. `dominod` uses this to answer
    /// warm submissions at admission time without a queue round trip.
    pub fn probe(&self, key: &str) -> Option<FlowOutcome> {
        self.lookup(key, CountAs::HitsOnly)
    }

    /// A completely count-silent lookup: neither hits nor misses move.
    /// This is the cache-peering door (`GET /cache/peek/:key` on
    /// `dominod`): a gateway sounding out which backend holds a key must
    /// not distort the backend's hit/miss accounting, which the serve
    /// benchmarks read as "requests answered warm" / "flows recomputed".
    pub fn peek(&self, key: &str) -> Option<FlowOutcome> {
        self.lookup(key, CountAs::Silent)
    }

    fn lookup(&self, key: &str, count: CountAs) -> Option<FlowOutcome> {
        if let Some(found) = self.memory.lock().expect("cache lock").touch(key) {
            if count != CountAs::Silent {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some(found);
        }
        if let Some(dir) = &self.disk_dir {
            match CACHE_PROFILE.read_entry(dir, key) {
                DiskRead::Missing => {}
                DiskRead::Corrupt => self.quarantine(dir, key),
                DiskRead::Payload(payload) => match FlowOutcome::from_json_text(&payload) {
                    Ok(outcome) => {
                        if count != CountAs::Silent {
                            self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        let evicted = self.memory.lock().expect("cache lock").insert(
                            key.to_string(),
                            outcome.clone(),
                            self.memory_entry_budget,
                        );
                        self.memory_evictions.fetch_add(evicted, Ordering::Relaxed);
                        return Some(outcome);
                    }
                    Err(_) => {
                        // Corrupt bytes (checksum mismatch, torn tail,
                        // garbage JSON): never served, never fatal — the
                        // file is quarantined, the lookup is a miss, and
                        // the recomputed outcome will re-land atomically.
                        self.quarantine(dir, key);
                    }
                },
            }
        }
        if count == CountAs::Full {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Moves a corrupt entry into `<dir>/quarantine/` and counts it.
    /// Quarantined files are kept for post-mortem inspection but are
    /// invisible to lookups, `disk_len`, and the byte budget.
    fn quarantine(&self, dir: &Path, key: &str) {
        self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
        disk::quarantine(dir, &CACHE_PROFILE.entry_path(dir, key));
    }

    /// Inserts an outcome under `key` (and writes the disk entry, if any).
    ///
    /// Disk entries are written **atomically**: the bytes go to a unique
    /// temp file in the cache directory first, which is then renamed over
    /// `<key>.json`. A process killed (or SIGTERM'd) mid-store can
    /// therefore never leave a truncated `<key>.json` behind — readers
    /// observe either no entry or a complete one — and concurrent readers
    /// of an entry being replaced keep seeing complete bytes throughout
    /// (same-key writers race only on identical content, since equal keys
    /// imply equal outcomes). Pinned by this module's crash-simulation
    /// and concurrent-reader tests.
    ///
    /// Disk write failures are swallowed: the cache is an accelerator, not
    /// a source of truth, and the in-memory entry is still good.
    pub fn put(&self, key: &str, outcome: &FlowOutcome) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        let evicted = self.memory.lock().expect("cache lock").insert(
            key.to_string(),
            outcome.clone(),
            self.memory_entry_budget,
        );
        self.memory_evictions.fetch_add(evicted, Ordering::Relaxed);
        if let Some(dir) = &self.disk_dir {
            let payload = outcome.to_json().serialize();
            if let Some(path) = CACHE_PROFILE.write_entry(dir, key, &payload) {
                if self.disk_byte_budget > 0 {
                    let evicted =
                        CACHE_PROFILE.enforce_byte_budget(dir, &path, self.disk_byte_budget);
                    self.disk_evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of entries resident in memory.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("cache lock").map.len()
    }

    /// `true` if no entries are resident in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries in the disk backend (0 for memory-only caches).
    pub fn disk_len(&self) -> usize {
        self.disk_dir
            .as_ref()
            .map(|dir| CACHE_PROFILE.entry_count(dir))
            .unwrap_or(0)
    }

    /// Deletes every entry from memory and disk (including orphaned temps
    /// and quarantined corpses). Counters are kept.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] if a disk entry cannot be removed.
    pub fn clear(&self) -> Result<(), EngineError> {
        self.memory.lock().expect("cache lock").clear();
        if let Some(dir) = &self.disk_dir {
            CACHE_PROFILE.clear_dir(dir).map_err(EngineError::Io)?;
        }
        Ok(())
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            memory_evictions: self.memory_evictions.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_outcome(name: &str) -> FlowOutcome {
        FlowOutcome {
            name: name.into(),
            key: "k".into(),
            pis: 2,
            pos: 1,
            ma: None,
            mp: None,
            clock_ps: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dominolp-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_hit_and_miss_counters() {
        let cache = ResultCache::in_memory();
        assert!(cache.get("a").is_none());
        cache.put("a", &sample_outcome("one"));
        assert_eq!(cache.get("a").unwrap().name, "one");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_backend_survives_process_restart() {
        let dir = temp_dir("restart");
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            cache.put("deadbeef", &sample_outcome("persisted"));
            assert_eq!(cache.disk_len(), 1);
        }
        // A fresh cache (empty memory) must find the entry on disk.
        let cache = ResultCache::on_disk(&dir).unwrap();
        let found = cache.get("deadbeef").unwrap();
        assert_eq!(found.name, "persisted");
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 0);
        // Promotion: the second lookup is a memory hit.
        cache.get("deadbeef").unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss_and_quarantined() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::on_disk(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(cache.get("bad").is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.corrupt_evictions, 1);
        // The corpse moved aside: invisible to lookups and disk_len, kept
        // for post-mortem.
        assert!(!dir.join("bad.json").exists());
        assert!(dir.join("quarantine").join("bad.json").exists());
        assert_eq!(cache.disk_len(), 0);
        // Recovery: a recomputed outcome re-lands and reads back clean.
        cache.put("bad", &sample_outcome("healed"));
        assert_eq!(cache.peek("bad").unwrap().name, "healed");
        // clear purges the quarantine directory too.
        cache.clear().unwrap();
        assert!(!dir.join("quarantine").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A checksummed entry whose tail was torn off (truncation after the
    /// header line) fails verification even when the remaining prefix
    /// happens to parse — the checksum decides, not the JSON parser.
    #[test]
    fn truncated_checksummed_entry_is_quarantined() {
        let dir = temp_dir("torn-tail");
        let cache = ResultCache::on_disk(&dir).unwrap();
        cache.put("feed", &sample_outcome("whole"));
        let path = dir.join("feed.json");
        let full = std::fs::read_to_string(&path).unwrap();
        assert!(
            full.starts_with(CACHE_PROFILE.magic),
            "new entries are checksummed"
        );
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        // A fresh cache (cold memory) must reject the torn bytes.
        let fresh = ResultCache::on_disk(&dir).unwrap();
        assert!(fresh.get("feed").is_none());
        assert_eq!(fresh.stats().corrupt_evictions, 1);
        assert!(dir.join("quarantine").join("feed.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Entries written before checksumming (plain JSON, no magic header)
    /// still read back — upgrading a deployment must not cold-start its
    /// caches.
    #[test]
    fn legacy_plain_json_entry_still_reads() {
        let dir = temp_dir("legacy");
        let cache = ResultCache::on_disk(&dir).unwrap();
        let payload = sample_outcome("old-format").to_json().serialize();
        std::fs::write(dir.join("0ld.json"), payload).unwrap();
        assert_eq!(cache.get("0ld").unwrap().name, "old-format");
        assert_eq!(cache.stats().corrupt_evictions, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_checksum_roundtrip() {
        let payload = "{\"name\":\"x\"}";
        let encoded = CACHE_PROFILE.encode_entry(payload);
        assert_eq!(CACHE_PROFILE.decode_entry(&encoded), Some(payload));
        // Any single-byte flip in the payload is caught.
        let mut bytes = encoded.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let flipped = String::from_utf8(bytes).unwrap();
        assert_eq!(CACHE_PROFILE.decode_entry(&flipped), None);
        // A header without its newline is corrupt, not legacy.
        assert_eq!(CACHE_PROFILE.decode_entry(CACHE_PROFILE.magic), None);
        assert_eq!(CACHE_PROFILE.decode_entry("dominocache1 zzzz\n{}"), None);
    }

    /// Crash simulation: a writer killed between the temp-file write and
    /// the rename leaves only a `<key>.tmp…` orphan — exactly the on-disk
    /// state `put` passes through. Readers must never see it as an entry,
    /// it must not count as one, a later `put` of the same key must
    /// recover, and `clear` must sweep the orphan.
    #[test]
    fn killed_writer_leaves_no_partial_entry() {
        let dir = temp_dir("killed");
        let cache = ResultCache::on_disk(&dir).unwrap();
        // A truncated in-flight temp write (half a JSON document).
        std::fs::write(dir.join("deadbeef.tmp999-0"), "{\"name\":\"half").unwrap();
        assert_eq!(cache.disk_len(), 0, "temp files are not entries");
        assert!(cache.get("deadbeef").is_none());

        // Recovery: the recomputed outcome lands atomically…
        cache.put("deadbeef", &sample_outcome("recovered"));
        assert_eq!(cache.disk_len(), 1);
        // …and a fresh cache (new process) sweeps the orphan at open and
        // reads the entry back complete.
        let fresh = ResultCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.get("deadbeef").unwrap().name, "recovered");
        let temps = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                e.path()
                    .extension()
                    .and_then(|x| x.to_str())
                    .is_some_and(|x| x.starts_with("tmp"))
            })
            .count();
        assert_eq!(temps, 0, "restart swept the orphan temp");

        // clear sweeps entries (and any orphans) as before.
        cache.clear().unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Concurrent readers vs a writer replacing the same key: with the
    /// write-then-rename protocol every successful read observes a
    /// complete document (a plain `fs::write` over the live path would
    /// expose truncated intermediate states here).
    #[test]
    fn concurrent_readers_never_see_torn_writes() {
        let dir = temp_dir("torn");
        let cache = std::sync::Arc::new(ResultCache::on_disk(&dir).unwrap());
        // A long outcome name makes torn writes easy to catch.
        let outcome = sample_outcome(&"x".repeat(4096));
        cache.put("cafe", &outcome);

        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (dir, outcome, stop) = (dir.clone(), outcome.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                // A separate cache handle, as a second process would have.
                let cache = ResultCache::on_disk(&dir).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    cache.put("cafe", &outcome);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let (dir, stop) = (dir.clone(), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Bypass the memory layer: read the file raw, as a
                        // cold process would.
                        if let Ok(text) = std::fs::read_to_string(dir.join("cafe.json")) {
                            let payload = CACHE_PROFILE
                                .decode_entry(&text)
                                .expect("every observed entry passes its checksum");
                            let parsed = FlowOutcome::from_json_text(payload)
                                .expect("every observed entry is a complete document");
                            assert_eq!(parsed.name.len(), 4096);
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers observed at least one entry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn peek_is_count_silent() {
        let cache = ResultCache::in_memory();
        assert!(cache.peek("a").is_none());
        cache.put("a", &sample_outcome("one"));
        assert_eq!(cache.peek("a").unwrap().name, "one");
        let stats = cache.stats();
        assert_eq!(stats.hits(), 0, "peek hits are not counted");
        assert_eq!(stats.misses, 0, "peek misses are not counted");
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn memory_budget_evicts_least_recently_used() {
        let cache = ResultCache::in_memory().with_memory_entry_budget(2);
        cache.put("a", &sample_outcome("a"));
        cache.put("b", &sample_outcome("b"));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get("a").is_some());
        cache.put("c", &sample_outcome("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek("b").is_none(), "LRU entry evicted");
        assert!(cache.peek("a").is_some());
        assert!(cache.peek("c").is_some());
        assert_eq!(cache.stats().memory_evictions, 1);
        // Re-inserting an existing key does not evict.
        cache.put("c", &sample_outcome("c2"));
        assert_eq!(cache.stats().memory_evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn memory_eviction_falls_back_to_disk() {
        let dir = temp_dir("fallback");
        let cache = ResultCache::on_disk(&dir)
            .unwrap()
            .with_memory_entry_budget(1);
        cache.put("aaaa", &sample_outcome("a"));
        cache.put("bbbb", &sample_outcome("b"));
        assert_eq!(cache.len(), 1, "memory holds only the newest entry");
        assert_eq!(cache.disk_len(), 2, "disk keeps both");
        // The evicted entry comes back through the disk layer.
        let found = cache.get("aaaa").unwrap();
        assert_eq!(found.name, "a");
        assert_eq!(cache.stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_budget_evicts_oldest_entries_but_never_the_newest() {
        let dir = temp_dir("diskbudget");
        // One serialized sample outcome is ~120 bytes; a budget of one
        // entry's worth forces eviction on every subsequent store.
        let one_entry = sample_outcome("x").to_json().serialize().len() as u64;
        let cache = ResultCache::on_disk(&dir)
            .unwrap()
            .with_disk_byte_budget(one_entry);
        cache.put("1111", &sample_outcome("x"));
        assert_eq!(cache.disk_len(), 1);
        // mtime granularity can be coarse; make ordering unambiguous.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.put("2222", &sample_outcome("x"));
        assert_eq!(cache.disk_len(), 1, "oldest entry evicted");
        assert!(dir.join("2222.json").exists(), "newest entry survives");
        assert!(cache.stats().disk_evictions >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_empties_both_backends() {
        let dir = temp_dir("clear");
        let cache = ResultCache::on_disk(&dir).unwrap();
        cache.put("x", &sample_outcome("x"));
        cache.put("y", &sample_outcome("y"));
        assert_eq!(cache.disk_len(), 2);
        cache.clear().unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.disk_len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
