//! Engine acceptance tests on the full public-domain suite (the same four
//! jobs `dominoc suite --public` runs):
//!
//! * parallel-vs-serial equivalence: identical `FlowOutcome`s regardless of
//!   thread count;
//! * cache determinism: a warm rerun is answered entirely from the cache —
//!   zero flow recomputations — and is byte-identical to the cold run;
//! * cancellation: a cancelled batch stops claiming jobs.

use std::sync::{Arc, Mutex};

use domino_engine::{
    CancelToken, EngineConfig, FlowEngine, FlowJob, JobResult, JobSpec, ProgressEvent, ResultCache,
};

fn public_suite_jobs() -> Vec<FlowJob> {
    domino_workloads::public_row_names()
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            // Short simulation keeps the debug-profile test quick; every
            // configuration below uses the *same* spec, which is what the
            // equivalence claims are about.
            spec.sim.cycles = 512;
            spec.sim.warmup = 8;
            spec.resolve().expect("suite row resolves")
        })
        .collect()
}

fn outcomes(results: &[JobResult]) -> Vec<&domino_engine::FlowOutcome> {
    results
        .iter()
        .map(|r| r.outcome().expect("job completed"))
        .collect()
}

#[test]
fn parallel_batches_match_serial_exactly() {
    let jobs = public_suite_jobs();
    let serial = FlowEngine::new(EngineConfig {
        threads: 1,
        cache: None,
        snapshots: None,
    })
    .run_batch(&jobs);
    for threads in [2, 4] {
        let parallel = FlowEngine::new(EngineConfig {
            threads,
            cache: None,
            snapshots: None,
        })
        .run_batch(&jobs);
        // Identical outcome structs…
        assert_eq!(
            outcomes(&serial),
            outcomes(&parallel),
            "threads = {threads}"
        );
        // …and byte-identical serialized form.
        for (s, p) in outcomes(&serial).iter().zip(outcomes(&parallel)) {
            assert_eq!(
                s.to_json().serialize(),
                p.to_json().serialize(),
                "threads = {threads}"
            );
        }
    }
}

#[test]
fn warm_cache_rerun_recomputes_nothing() {
    let jobs = public_suite_jobs();
    let cache = Arc::new(ResultCache::in_memory());
    let engine = FlowEngine::new(EngineConfig {
        threads: 4,
        cache: Some(Arc::clone(&cache)),
        snapshots: None,
    });

    let cold = engine.run_batch(&jobs);
    let after_cold = cache.stats();
    assert_eq!(after_cold.misses, jobs.len() as u64);
    assert_eq!(after_cold.stores, jobs.len() as u64);
    assert!(cold.iter().all(|r| !r.was_cached()));

    let warm = engine.run_batch(&jobs);
    let after_warm = cache.stats();
    // Zero new misses ⇒ zero flow recomputations on the warm run.
    assert_eq!(after_warm.misses, after_cold.misses);
    assert_eq!(after_warm.hits(), jobs.len() as u64);
    assert!(warm.iter().all(JobResult::was_cached));

    // The cached outcomes are byte-identical to the computed ones.
    for (c, w) in outcomes(&cold).iter().zip(outcomes(&warm)) {
        assert_eq!(c.to_json().serialize(), w.to_json().serialize());
    }
}

#[test]
fn disk_cache_round_trips_outcomes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dominolp-suite-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = public_suite_jobs();

    let cold = {
        let cache = Arc::new(ResultCache::on_disk(&dir).expect("cache dir"));
        let engine = FlowEngine::new(EngineConfig {
            threads: 2,
            cache: Some(cache),
            snapshots: None,
        });
        engine.run_batch(&jobs)
    };

    // A fresh process-like cache over the same directory answers everything
    // from disk.
    let cache = Arc::new(ResultCache::on_disk(&dir).expect("cache dir"));
    let engine = FlowEngine::new(EngineConfig {
        threads: 2,
        cache: Some(Arc::clone(&cache)),
        snapshots: None,
    });
    let warm = engine.run_batch(&jobs);
    let stats = cache.stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.disk_hits, jobs.len() as u64);
    for (c, w) in outcomes(&cold).iter().zip(outcomes(&warm)) {
        assert_eq!(c.to_json().serialize(), w.to_json().serialize());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn cancellation_stops_the_suite_batch() {
    let jobs = public_suite_jobs();
    let cancel = CancelToken::new();
    let engine = FlowEngine::new(EngineConfig {
        threads: 1,
        cache: None,
        snapshots: None,
    });
    let seen = Mutex::new(Vec::new());
    let cancel_handle = cancel.clone();
    let results = engine.run_batch_with(
        &jobs,
        |event| {
            if let ProgressEvent::Finished { index, .. } = &event {
                if *index == 0 {
                    cancel_handle.cancel();
                }
            }
            seen.lock().unwrap().push(event);
        },
        &cancel,
    );
    assert!(results[0].outcome().is_some(), "first job completes");
    assert!(
        results[1..]
            .iter()
            .all(|r| matches!(r, JobResult::Cancelled)),
        "remaining jobs are cancelled"
    );
    // Every job got exactly one terminal event.
    let events = seen.lock().unwrap();
    let terminal = events
        .iter()
        .filter(|e| !matches!(e, ProgressEvent::Started { .. }))
        .count();
    assert_eq!(terminal, jobs.len());
}
