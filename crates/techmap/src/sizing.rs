//! Timing-driven gate sizing (the "transistor resizing" step of Table 2).
//!
//! After mapping, the netlist may miss the clock; this pass iteratively
//! upsizes the cells on the critical path until timing is met (or limits are
//! hit). Upsizing speeds a cell up but grows its input pins — loading its
//! drivers — and its power; this interplay is exactly what lets subsequent
//! timing optimization "undo" area/power optimization, the phenomenon
//! Table 2 of the paper investigates.

use crate::cells::Library;
use crate::mapping::MappedNetlist;
use crate::timing::{sta, TimingReport};

/// Configuration for [`size_for_timing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingConfig {
    /// Target clock period, ps. Defaults to the library clock.
    pub clock_period_ps: Option<f64>,
    /// Multiplicative upsize per iteration for critical cells.
    pub gamma: f64,
    /// Maximum drive size of any cell.
    pub max_size: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for SizingConfig {
    fn default() -> Self {
        SizingConfig {
            clock_period_ps: None,
            gamma: 1.3,
            max_size: 8.0,
            max_iterations: 64,
        }
    }
}

/// Result of a sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Upsize operations applied.
    pub upsizes: usize,
    /// Final timing.
    pub timing: TimingReport,
    /// `true` if the clock is met.
    pub met: bool,
}

/// Upsizes critical-path cells until the clock period is met.
///
/// Mutates `mapped` in place (cell `size` fields) and returns a report.
pub fn size_for_timing(
    mapped: &mut MappedNetlist,
    lib: &Library,
    config: &SizingConfig,
) -> SizingReport {
    let target = config.clock_period_ps.unwrap_or(1e6 / lib.clock_mhz);
    let mut upsizes = 0usize;
    let mut iterations = 0usize;
    loop {
        let timing = sta(mapped, lib);
        let met = timing.worst_arrival_ps <= target;
        if met || iterations >= config.max_iterations {
            return SizingReport {
                iterations,
                upsizes,
                timing,
                met,
            };
        }
        let critical_path = timing.critical_path.clone();
        let mut progressed = false;
        for &i in &critical_path {
            let cell = &mut mapped.cells_mut()[i];
            if cell.size < config.max_size {
                cell.size = (cell.size * config.gamma).min(config.max_size);
                upsizes += 1;
                progressed = true;
            }
        }
        if !progressed {
            // Everything on the path is maxed out: give up.
            let timing = sta(mapped, lib);
            let met = timing.worst_arrival_ps <= target;
            return SizingReport {
                iterations,
                upsizes,
                timing,
                met,
            };
        }
        iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map;
    use domino_netlist::Network;
    use domino_phase::{DominoSynthesizer, PhaseAssignment};

    fn deep_chain(depth: usize) -> MappedNetlist {
        let mut net = Network::new("deep");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let mut cur = net.add_and([a, b]).unwrap();
        for _ in 1..depth {
            cur = net.add_and([cur, b]).unwrap();
        }
        net.add_output("f", cur).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        map(&domino, &Library::standard())
    }

    #[test]
    fn sizing_meets_a_reachable_target() {
        let lib = Library::standard();
        let mut mapped = deep_chain(12);
        let before = sta(&mapped, &lib).worst_arrival_ps;
        // Ask for 75% of the unsized delay: reachable by upsizing.
        let target = before * 0.75;
        let report = size_for_timing(
            &mut mapped,
            &lib,
            &SizingConfig {
                clock_period_ps: Some(target),
                ..SizingConfig::default()
            },
        );
        assert!(
            report.met,
            "target {target} vs {}",
            report.timing.worst_arrival_ps
        );
        assert!(report.upsizes > 0);
        assert!(mapped.effective_cell_count() >= mapped.cell_count());
    }

    #[test]
    fn already_met_target_is_a_noop() {
        let lib = Library::standard();
        let mut mapped = deep_chain(3);
        let slack_target = sta(&mapped, &lib).worst_arrival_ps * 2.0;
        let report = size_for_timing(
            &mut mapped,
            &lib,
            &SizingConfig {
                clock_period_ps: Some(slack_target),
                ..SizingConfig::default()
            },
        );
        assert!(report.met);
        assert_eq!(report.upsizes, 0);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn impossible_target_reports_unmet() {
        let lib = Library::standard();
        let mut mapped = deep_chain(12);
        let report = size_for_timing(
            &mut mapped,
            &lib,
            &SizingConfig {
                clock_period_ps: Some(1.0), // 1 ps: impossible
                max_iterations: 10,
                ..SizingConfig::default()
            },
        );
        assert!(!report.met);
    }

    #[test]
    fn sizing_grows_effective_cell_count() {
        let lib = Library::standard();
        let mut mapped = deep_chain(12);
        let before_cells = mapped.effective_cell_count();
        let target = sta(&mapped, &lib).worst_arrival_ps * 0.7;
        size_for_timing(
            &mut mapped,
            &lib,
            &SizingConfig {
                clock_period_ps: Some(target),
                ..SizingConfig::default()
            },
        );
        assert!(mapped.effective_cell_count() > before_cells);
    }
}
