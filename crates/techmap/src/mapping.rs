//! Lowering a [`DominoNetwork`] onto library cells.
//!
//! Gates wider than the library's `max_fanin` are decomposed into balanced
//! same-kind trees (domino AND/OR are associative, and a tree of footed
//! domino stages cascades correctly). Boundary inverters become `InputInv` /
//! `OutputInv` cells; latch data outputs become D flip-flops closing the
//! sequential loop.

use domino_phase::{DominoGateKind, DominoNetwork, DominoRef};

use crate::cells::{CellClass, Library};

/// Reference to a value inside a [`MappedNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappedRef {
    /// Output of cell `i`.
    Cell(usize),
    /// Source rail `i` (primary inputs then flip-flop outputs).
    Source(usize),
    /// Constant rail.
    Const(bool),
}

/// A mapped cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedCell {
    /// Library class.
    pub class: CellClass,
    /// Fanin rails.
    pub fanins: Vec<MappedRef>,
    /// Drive strength multiplier (changed by sizing; 1.0 = unit cell).
    pub size: f64,
}

/// A mapped flip-flop: drives source rail `source_index` from `data` at
/// every clock edge.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedDff {
    /// The source rail this flop drives.
    pub source_index: usize,
    /// Data input.
    pub data: MappedRef,
    /// Reset state.
    pub init: bool,
    /// Drive strength multiplier.
    pub size: f64,
}

/// A technology-mapped domino netlist (combinational cells in topological
/// order plus flip-flops closing sequential loops).
#[derive(Debug, Clone, PartialEq)]
pub struct MappedNetlist {
    cells: Vec<MappedCell>,
    dffs: Vec<MappedDff>,
    outputs: Vec<(String, MappedRef)>,
    source_names: Vec<String>,
    pi_count: usize,
}

impl MappedNetlist {
    /// The combinational cells in topological order.
    pub fn cells(&self) -> &[MappedCell] {
        &self.cells
    }

    /// Mutable access for sizing.
    pub(crate) fn cells_mut(&mut self) -> &mut [MappedCell] {
        &mut self.cells
    }

    /// The flip-flops.
    pub fn dffs(&self) -> &[MappedDff] {
        &self.dffs
    }

    /// Primary outputs `(name, rail)`, in declaration order.
    pub fn outputs(&self) -> &[(String, MappedRef)] {
        &self.outputs
    }

    /// Source rail names (primary inputs then flip-flop outputs).
    pub fn source_names(&self) -> &[String] {
        &self.source_names
    }

    /// Number of source rails.
    pub fn source_count(&self) -> usize {
        self.source_names.len()
    }

    /// Number of primary inputs (sources before this index are PIs, after
    /// are flop outputs).
    pub fn pi_count(&self) -> usize {
        self.pi_count
    }

    /// Plain cell instance count (combinational cells + flip-flops),
    /// ignoring sizing.
    pub fn cell_count(&self) -> usize {
        self.cells.len() + self.dffs.len()
    }

    /// Standard-cell count after sizing: an upsized cell is implemented as
    /// `⌈size⌉` parallel fingers — this is the Table 1/2 "Size" column.
    pub fn effective_cell_count(&self) -> usize {
        let c: f64 = self.cells.iter().map(|c| c.size.ceil()).sum();
        let d: f64 = self.dffs.iter().map(|d| d.size.ceil()).sum();
        (c + d) as usize
    }

    /// Resolves a rail's logical value given source values and already
    /// computed cell values.
    pub fn ref_value(&self, r: MappedRef, sources: &[bool], cell_values: &[bool]) -> bool {
        match r {
            MappedRef::Cell(i) => cell_values[i],
            MappedRef::Source(i) => sources[i],
            MappedRef::Const(v) => v,
        }
    }

    /// Evaluates every cell for one cycle's source values (no state
    /// update); returns per-cell logical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not match [`MappedNetlist::source_count`].
    pub fn eval_cells(&self, sources: &[bool]) -> Vec<bool> {
        assert_eq!(sources.len(), self.source_count(), "source value count");
        let mut values = vec![false; self.cells.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            let v = match cell.class {
                CellClass::DominoAnd => cell
                    .fanins
                    .iter()
                    .all(|&f| self.ref_value(f, sources, &values)),
                CellClass::DominoOr => cell
                    .fanins
                    .iter()
                    .any(|&f| self.ref_value(f, sources, &values)),
                CellClass::DominoBuf => self.ref_value(cell.fanins[0], sources, &values),
                CellClass::InputInv | CellClass::OutputInv => {
                    !self.ref_value(cell.fanins[0], sources, &values)
                }
                CellClass::Dff => unreachable!("flip-flops live in dffs, not cells"),
            };
            values[i] = v;
        }
        values
    }

    /// Resolves a rail's packed value (64 simulation lanes per word) given
    /// source words and already computed cell words.
    pub fn ref_word(&self, r: MappedRef, sources: &[u64], cell_words: &[u64]) -> u64 {
        match r {
            MappedRef::Cell(i) => cell_words[i],
            MappedRef::Source(i) => sources[i],
            MappedRef::Const(v) => {
                if v {
                    !0
                } else {
                    0
                }
            }
        }
    }

    /// Bit-parallel variant of [`MappedNetlist::eval_cells`]: every word
    /// carries 64 independent simulation lanes and each cell evaluates as
    /// one word-wide boolean operation. `values` is resized to the cell
    /// count and fully overwritten (reuse the buffer across cycles to stay
    /// allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not match [`MappedNetlist::source_count`].
    pub fn eval_cells_packed(&self, sources: &[u64], values: &mut Vec<u64>) {
        assert_eq!(sources.len(), self.source_count(), "source word count");
        values.clear();
        values.resize(self.cells.len(), 0);
        for i in 0..self.cells.len() {
            let cell = &self.cells[i];
            let w = match cell.class {
                CellClass::DominoAnd => cell
                    .fanins
                    .iter()
                    .fold(!0u64, |acc, &f| acc & self.ref_word(f, sources, values)),
                CellClass::DominoOr => cell
                    .fanins
                    .iter()
                    .fold(0u64, |acc, &f| acc | self.ref_word(f, sources, values)),
                CellClass::DominoBuf => self.ref_word(cell.fanins[0], sources, values),
                CellClass::InputInv | CellClass::OutputInv => {
                    !self.ref_word(cell.fanins[0], sources, values)
                }
                CellClass::Dff => unreachable!("flip-flops live in dffs, not cells"),
            };
            values[i] = w;
        }
    }

    /// Evaluates the primary outputs for one cycle.
    pub fn eval_outputs(&self, sources: &[bool]) -> Vec<bool> {
        let values = self.eval_cells(sources);
        self.outputs
            .iter()
            .map(|(_, r)| self.ref_value(*r, sources, &values))
            .collect()
    }

    /// Load capacitance seen by every cell output (sum of consumer input
    /// pin caps plus the cell's own output cap), in fF.
    pub fn load_caps_ff(&self, lib: &Library) -> Vec<f64> {
        let mut caps: Vec<f64> = self
            .cells
            .iter()
            .map(|c| lib.self_cap_ff * c.size)
            .collect();
        let mut add_load = |r: MappedRef, pin_cap: f64| {
            if let MappedRef::Cell(i) = r {
                caps[i] += pin_cap;
            }
        };
        for cell in &self.cells {
            for &f in &cell.fanins {
                add_load(f, lib.input_cap_ff * cell.size);
            }
        }
        for dff in &self.dffs {
            add_load(dff.data, lib.input_cap_ff * dff.size);
        }
        for (_, r) in &self.outputs {
            add_load(*r, lib.input_cap_ff); // external load ≈ one unit pin
        }
        caps
    }
}

/// Maps a domino block onto library cells.
///
/// Boundary inverter cells are emitted first (input side), then the domino
/// gates in topological order (decomposed to `lib.max_fanin`), then output
/// inverters; latch data outputs become flip-flops.
pub fn map(domino: &DominoNetwork, lib: &Library) -> MappedNetlist {
    let sources = domino.sources();
    let source_index = |node: domino_netlist::NodeId| -> usize {
        sources
            .iter()
            .position(|&s| s == node)
            .expect("domino source missing from source list")
    };
    let mut cells: Vec<MappedCell> = Vec::new();

    // Input-boundary inverters.
    let mut inv_cell: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &src in domino.input_inverters() {
        let si = source_index(src);
        let idx = cells.len();
        cells.push(MappedCell {
            class: CellClass::InputInv,
            fanins: vec![MappedRef::Source(si)],
            size: 1.0,
        });
        inv_cell.insert(si, idx);
    }

    // Domino gates, decomposed into ≤ max_fanin trees.
    let mut gate_root: Vec<usize> = Vec::with_capacity(domino.gates().len());
    for gate in domino.gates() {
        let class = match gate.kind {
            DominoGateKind::And => CellClass::DominoAnd,
            DominoGateKind::Or => CellClass::DominoOr,
        };
        let mut level: Vec<MappedRef> = gate
            .fanins
            .iter()
            .map(|&f| lower_ref(f, &gate_root, &inv_cell, &source_index))
            .collect();
        if level.len() == 1 {
            // Single-fanin gate: a domino buffer stage.
            let idx = cells.len();
            cells.push(MappedCell {
                class: CellClass::DominoBuf,
                fanins: level,
                size: 1.0,
            });
            gate_root.push(idx);
            continue;
        }
        while level.len() > lib.max_fanin {
            let mut next: Vec<MappedRef> = Vec::with_capacity(level.len().div_ceil(lib.max_fanin));
            for chunk in level.chunks(lib.max_fanin) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let idx = cells.len();
                cells.push(MappedCell {
                    class,
                    fanins: chunk.to_vec(),
                    size: 1.0,
                });
                next.push(MappedRef::Cell(idx));
            }
            level = next;
        }
        let idx = cells.len();
        cells.push(MappedCell {
            class,
            fanins: level,
            size: 1.0,
        });
        gate_root.push(idx);
    }

    // Outputs: inverters for negative phases, then PO/DFF wiring.
    let mut outputs: Vec<(String, MappedRef)> = Vec::new();
    let mut dffs: Vec<MappedDff> = Vec::new();
    let pi_count = sources.len() - domino.latch_inits().len();
    let mut latch_idx = 0usize;
    for out in domino.outputs() {
        let mut r = lower_ref(out.driver, &gate_root, &inv_cell, &source_index);
        if out.phase.is_negative() {
            let idx = cells.len();
            cells.push(MappedCell {
                class: CellClass::OutputInv,
                fanins: vec![r],
                size: 1.0,
            });
            r = MappedRef::Cell(idx);
        }
        if out.is_latch_data {
            dffs.push(MappedDff {
                source_index: pi_count + latch_idx,
                data: r,
                init: domino.latch_inits()[latch_idx],
                size: 1.0,
            });
            latch_idx += 1;
        } else {
            outputs.push((out.name.clone(), r));
        }
    }

    MappedNetlist {
        cells,
        dffs,
        outputs,
        source_names: sources.iter().map(|s| s.to_string()).collect(),
        pi_count,
    }
}

fn lower_ref(
    r: DominoRef,
    gate_root: &[usize],
    inv_cell: &std::collections::HashMap<usize, usize>,
    source_index: &impl Fn(domino_netlist::NodeId) -> usize,
) -> MappedRef {
    match r {
        DominoRef::Gate(g) => MappedRef::Cell(gate_root[g]),
        DominoRef::Source { node, complemented } => {
            let si = source_index(node);
            if complemented {
                MappedRef::Cell(inv_cell[&si])
            } else {
                MappedRef::Source(si)
            }
        }
        DominoRef::Constant(v) => MappedRef::Const(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;
    use domino_phase::{DominoSynthesizer, PhaseAssignment};

    fn map_network(net: &Network, bits: u64) -> (MappedNetlist, usize) {
        let synth = DominoSynthesizer::new(net).unwrap();
        let n = synth.view_outputs().len();
        let domino = synth
            .synthesize(&PhaseAssignment::from_bits(n, bits))
            .unwrap();
        (map(&domino, &Library::standard()), n)
    }

    #[test]
    fn wide_gate_decomposed() {
        let mut net = Network::new("wide");
        let inputs: Vec<_> = (0..10)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        let g = net.add_and(inputs).unwrap();
        net.add_output("f", g).unwrap();
        let (mapped, _) = map_network(&net, 0);
        assert!(mapped.cells().iter().all(|c| c.fanins.len() <= 4));
        assert!(mapped.cells().len() >= 3); // 10 inputs need ≥ 3 AND4s
                                            // Function preserved.
        let all_true = vec![true; 10];
        assert_eq!(mapped.eval_outputs(&all_true), vec![true]);
        let mut one_false = all_true.clone();
        one_false[7] = false;
        assert_eq!(mapped.eval_outputs(&one_false), vec![false]);
    }

    #[test]
    fn packed_cell_eval_agrees_with_scalar_lane_by_lane() {
        // f = !(a·b) + c under a mixed phase assignment exercises every
        // cell class except Dff.
        let mut net = Network::new("pk");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nab = net.add_not(ab).unwrap();
        let f = net.add_or([nab, c]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", ab).unwrap();
        let (mapped, _) = map_network(&net, 0b01);
        let mut words = vec![0u64; mapped.source_count()];
        for lane in 0..8usize {
            for (i, w) in words.iter_mut().enumerate() {
                if (lane >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let mut packed = Vec::new();
        mapped.eval_cells_packed(&words, &mut packed);
        for lane in 0..8usize {
            let bits: Vec<bool> = (0..mapped.source_count())
                .map(|i| (words[i] >> lane) & 1 == 1)
                .collect();
            let scalar = mapped.eval_cells(&bits);
            for i in 0..scalar.len() {
                assert_eq!(
                    (packed[i] >> lane) & 1 == 1,
                    scalar[i],
                    "lane {lane} cell {i}"
                );
            }
        }
    }

    #[test]
    fn mapping_preserves_function_for_all_phases() {
        // f = !(a·b) + c, g = a·b
        let mut net = Network::new("m");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nab = net.add_not(ab).unwrap();
        let f = net.add_or([nab, c]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", ab).unwrap();
        for bits in 0..4u64 {
            let (mapped, _) = map_network(&net, bits);
            for v in 0..8u32 {
                let vals: Vec<bool> = (0..3).map(|i| v & (1 << i) != 0).collect();
                let want = net.eval_comb(&vals).unwrap();
                assert_eq!(mapped.eval_outputs(&vals), want, "bits {bits} v {v}");
            }
        }
    }

    #[test]
    fn sequential_mapping_builds_dffs() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(true);
        let d = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", d).unwrap();
        let (mapped, _) = map_network(&net, 0);
        assert_eq!(mapped.dffs().len(), 1);
        assert_eq!(mapped.dffs()[0].source_index, 1);
        assert!(mapped.dffs()[0].init);
        assert_eq!(mapped.pi_count(), 1);
        assert_eq!(mapped.cell_count(), mapped.cells().len() + 1);
    }

    #[test]
    fn effective_cell_count_tracks_sizing() {
        let mut net = Network::new("m");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, b]).unwrap();
        net.add_output("f", g).unwrap();
        let (mut mapped, _) = map_network(&net, 0);
        let before = mapped.effective_cell_count();
        mapped.cells_mut()[0].size = 2.5;
        assert_eq!(mapped.effective_cell_count(), before + 2);
    }

    #[test]
    fn load_caps_count_consumers() {
        let mut net = Network::new("m");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g1 = net.add_and([a, b]).unwrap();
        let g2 = net.add_or([g1, a]).unwrap();
        let g3 = net.add_or([g1, b]).unwrap();
        net.add_output("x", g2).unwrap();
        net.add_output("y", g3).unwrap();
        let (mapped, _) = map_network(&net, 0);
        let lib = Library::standard();
        let caps = mapped.load_caps_ff(&lib);
        // g1 drives two consumers: cap > self cap + one pin.
        let g1_cell = 0; // first gate emitted (no inverters in this netlist)
        assert!(caps[g1_cell] > lib.self_cap_ff + lib.input_cap_ff);
    }
}
