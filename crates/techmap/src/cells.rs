//! The parametric domino cell library.

/// Functional class of a mapped cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Domino AND: series N-stack, precharged — slow with many inputs.
    DominoAnd,
    /// Domino OR: parallel N-stack, precharged.
    DominoOr,
    /// Domino buffer (single-input pass; footed dynamic stage).
    DominoBuf,
    /// Static inverter at an input boundary.
    InputInv,
    /// Static inverter at an output boundary.
    OutputInv,
    /// D flip-flop.
    Dff,
}

impl CellClass {
    /// `true` for precharged (clocked) domino stages, which draw clock power
    /// every cycle.
    pub fn is_domino(self) -> bool {
        matches!(
            self,
            CellClass::DominoAnd | CellClass::DominoOr | CellClass::DominoBuf
        )
    }
}

/// The cell library: electrical and timing parameters for every cell class,
/// parameterized by fanin where applicable.
///
/// Delays follow a linear model
/// `d = (base + stack·(k−1)) / size + load_coeff · C_load`; domino AND has a
/// much larger `stack` coefficient than OR (series vs parallel transistors —
/// the root of the paper's `P_i` penalty discussion).
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Maximum cell fanin; wider gates are decomposed into trees.
    pub max_fanin: usize,
    /// Intrinsic delay of a domino AND stage, ps.
    pub and_base_ps: f64,
    /// Extra series-stack delay per additional AND input, ps.
    pub and_stack_ps: f64,
    /// Intrinsic delay of a domino OR stage, ps.
    pub or_base_ps: f64,
    /// Extra delay per additional OR input, ps.
    pub or_stack_ps: f64,
    /// Static inverter delay, ps.
    pub inv_ps: f64,
    /// Flip-flop clock-to-Q delay, ps.
    pub dff_clk_to_q_ps: f64,
    /// Delay added per femtofarad of load, ps/fF.
    pub load_ps_per_ff: f64,
    /// Input pin capacitance of a unit-size cell, fF.
    pub input_cap_ff: f64,
    /// Self (output) capacitance of a unit-size cell, fF.
    pub self_cap_ff: f64,
    /// Clock/precharge capacitance a unit-size domino cell presents every
    /// cycle, fF (this is why domino burns power even when idle).
    pub clock_cap_ff: f64,
    /// Leakage per cell, µA.
    pub leak_ua: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Clock frequency, MHz.
    pub clock_mhz: f64,
}

impl Library {
    /// The default 1999-era library: 1.8 V, 500 MHz, fanin-4 cells.
    pub fn standard() -> Self {
        Library {
            max_fanin: 4,
            and_base_ps: 30.0,
            and_stack_ps: 16.0,
            or_base_ps: 24.0,
            or_stack_ps: 4.0,
            inv_ps: 12.0,
            dff_clk_to_q_ps: 40.0,
            load_ps_per_ff: 1.5,
            input_cap_ff: 2.0,
            self_cap_ff: 4.0,
            clock_cap_ff: 0.8,
            leak_ua: 0.02,
            vdd: 1.8,
            clock_mhz: 500.0,
        }
    }

    /// Intrinsic (unloaded, unit-size) delay of a cell with `k` inputs, ps.
    pub fn intrinsic_delay_ps(&self, class: CellClass, k: usize) -> f64 {
        let k = k.max(1) as f64;
        match class {
            CellClass::DominoAnd => self.and_base_ps + self.and_stack_ps * (k - 1.0),
            CellClass::DominoOr => self.or_base_ps + self.or_stack_ps * (k - 1.0),
            CellClass::DominoBuf => self.or_base_ps,
            CellClass::InputInv | CellClass::OutputInv => self.inv_ps,
            CellClass::Dff => self.dff_clk_to_q_ps,
        }
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_slower_than_or_and_grows_faster() {
        let lib = Library::standard();
        for k in 2..=4 {
            assert!(
                lib.intrinsic_delay_ps(CellClass::DominoAnd, k)
                    > lib.intrinsic_delay_ps(CellClass::DominoOr, k),
                "k = {k}"
            );
        }
        let and_growth = lib.intrinsic_delay_ps(CellClass::DominoAnd, 4)
            - lib.intrinsic_delay_ps(CellClass::DominoAnd, 2);
        let or_growth = lib.intrinsic_delay_ps(CellClass::DominoOr, 4)
            - lib.intrinsic_delay_ps(CellClass::DominoOr, 2);
        assert!(and_growth > or_growth);
    }

    #[test]
    fn domino_classification() {
        assert!(CellClass::DominoAnd.is_domino());
        assert!(CellClass::DominoOr.is_domino());
        assert!(CellClass::DominoBuf.is_domino());
        assert!(!CellClass::InputInv.is_domino());
        assert!(!CellClass::OutputInv.is_domino());
        assert!(!CellClass::Dff.is_domino());
    }
}
