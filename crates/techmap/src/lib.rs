//! Technology mapping, timing analysis and gate sizing for domino blocks.
//!
//! This crate is the substrate for the paper's experimental flow steps 3–4:
//! after phase assignment produces an inverter-free
//! [`DominoNetwork`](domino_phase::DominoNetwork), [`map`]
//! lowers it onto a small parametric domino cell [`Library`] (AND/OR cells
//! of bounded fanin, boundary inverters, flip-flops), [`sta`]
//! computes arrival times with a series-stack penalty for AND structures,
//! and [`size_for_timing`] iteratively upsizes
//! critical cells until a clock constraint is met — the "transistor
//! resizing" step that Table 2 shows can *undo* area/power optimization.
//!
//! The paper used a proprietary Intel library and flow; any self-consistent
//! library preserves the MA-vs-MP comparisons the experiments make (see
//! DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use domino_phase::{DominoSynthesizer, PhaseAssignment};
//! use domino_techmap::{map, sta, Library};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = domino_netlist::Network::new("m");
//! let inputs: Vec<_> = (0..6)
//!     .map(|i| net.add_input(format!("i{i}")))
//!     .collect::<Result<_, _>>()?;
//! let wide = net.add_and(inputs)?; // 6-input AND: needs decomposition
//! net.add_output("f", wide)?;
//! let synth = DominoSynthesizer::new(&net)?;
//! let domino = synth.synthesize(&PhaseAssignment::all_positive(1))?;
//! let lib = Library::standard();
//! let mapped = map(&domino, &lib);
//! assert!(mapped.cells().iter().all(|c| c.fanins.len() <= lib.max_fanin));
//! let timing = sta(&mapped, &lib);
//! assert!(timing.worst_arrival_ps > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cells;
mod mapping;
mod sizing;
mod timing;

pub use cells::{CellClass, Library};
pub use mapping::{map, MappedCell, MappedNetlist, MappedRef};
pub use sizing::{size_for_timing, SizingConfig, SizingReport};
pub use timing::{sta, TimingReport};
