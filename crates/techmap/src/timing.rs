//! Static timing analysis of mapped domino netlists.
//!
//! Domino stages cascade within the evaluate phase, so the block's critical
//! delay is the longest source-to-sink path; the clock period must cover it
//! (plus flop overhead). The linear delay model charges each cell its
//! intrinsic delay (with the series-stack AND penalty) scaled down by drive
//! size, plus a load term for the capacitance it drives.

use crate::cells::{CellClass, Library};
use crate::mapping::{MappedNetlist, MappedRef};

/// Result of [`sta`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Arrival time at every cell output, ps.
    pub arrivals_ps: Vec<f64>,
    /// Worst arrival over all timing endpoints (primary outputs and flop
    /// data pins), ps.
    pub worst_arrival_ps: f64,
    /// Cells on (one of) the critical path(s), source to sink.
    pub critical_path: Vec<usize>,
    /// Clock period implied by the library's frequency, ps.
    pub clock_period_ps: f64,
}

impl TimingReport {
    /// Slack against the library clock (negative = violation), ps.
    pub fn slack_ps(&self) -> f64 {
        self.clock_period_ps - self.worst_arrival_ps
    }

    /// `true` if the netlist meets the clock.
    pub fn met(&self) -> bool {
        self.slack_ps() >= 0.0
    }
}

/// Delay of one cell at its current size and load, ps.
///
/// Upsizing scales the drive: both the intrinsic delay and the load-driving
/// term shrink with `size` (while the cell's input pins grow, loading its
/// drivers — that interplay is what the sizer trades off).
pub fn cell_delay_ps(
    lib: &Library,
    class: CellClass,
    fanin_count: usize,
    size: f64,
    load_ff: f64,
) -> f64 {
    (lib.intrinsic_delay_ps(class, fanin_count) + lib.load_ps_per_ff * load_ff) / size
}

/// Computes arrival times for every cell (topological sweep) and extracts a
/// critical path.
///
/// Sources launch at the flop clock-to-Q delay (flop outputs) or 0 (primary
/// inputs); endpoints are primary outputs and flop data pins.
pub fn sta(mapped: &MappedNetlist, lib: &Library) -> TimingReport {
    let loads = mapped.load_caps_ff(lib);
    let n = mapped.cells().len();
    let mut arrivals = vec![0.0f64; n];
    let mut worst_fanin: Vec<Option<usize>> = vec![None; n];
    let ref_arrival = |r: MappedRef, arrivals: &[f64]| -> f64 {
        match r {
            MappedRef::Cell(i) => arrivals[i],
            MappedRef::Source(i) => {
                if i >= mapped.pi_count() {
                    lib.dff_clk_to_q_ps
                } else {
                    0.0
                }
            }
            MappedRef::Const(_) => 0.0,
        }
    };
    for (i, cell) in mapped.cells().iter().enumerate() {
        let mut launch: f64 = 0.0;
        for &f in &cell.fanins {
            let a = ref_arrival(f, &arrivals);
            if a > launch {
                launch = a;
                worst_fanin[i] = match f {
                    MappedRef::Cell(j) => Some(j),
                    _ => None,
                };
            }
        }
        arrivals[i] =
            launch + cell_delay_ps(lib, cell.class, cell.fanins.len(), cell.size, loads[i]);
    }

    // Endpoints.
    let mut worst = 0.0f64;
    let mut worst_cell: Option<usize> = None;
    let mut consider = |r: MappedRef| {
        let a = ref_arrival(r, &arrivals);
        if a > worst {
            worst = a;
            worst_cell = match r {
                MappedRef::Cell(i) => Some(i),
                _ => None,
            };
        }
    };
    for (_, r) in mapped.outputs() {
        consider(*r);
    }
    for dff in mapped.dffs() {
        consider(dff.data);
    }

    // Backtrack the critical path.
    let mut critical_path = Vec::new();
    let mut cur = worst_cell;
    while let Some(i) = cur {
        critical_path.push(i);
        cur = worst_fanin[i];
    }
    critical_path.reverse();

    TimingReport {
        arrivals_ps: arrivals,
        worst_arrival_ps: worst,
        critical_path,
        clock_period_ps: 1e6 / lib.clock_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map;
    use domino_netlist::Network;
    use domino_phase::{DominoSynthesizer, PhaseAssignment};

    fn chain(depth: usize) -> MappedNetlist {
        let mut net = Network::new("chain");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let mut cur = net.add_and([a, b]).unwrap();
        for _ in 1..depth {
            cur = net.add_and([cur, b]).unwrap();
        }
        net.add_output("f", cur).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        map(&domino, &Library::standard())
    }

    #[test]
    fn deeper_chains_are_slower() {
        let lib = Library::standard();
        let t2 = sta(&chain(2), &lib).worst_arrival_ps;
        let t6 = sta(&chain(6), &lib).worst_arrival_ps;
        assert!(t6 > t2);
    }

    #[test]
    fn critical_path_spans_the_chain() {
        let lib = Library::standard();
        let mapped = chain(5);
        let report = sta(&mapped, &lib);
        assert_eq!(report.critical_path.len(), 5);
        // Arrivals increase along the path.
        for w in report.critical_path.windows(2) {
            assert!(report.arrivals_ps[w[1]] > report.arrivals_ps[w[0]]);
        }
    }

    #[test]
    fn upsizing_reduces_delay() {
        let lib = Library::standard();
        let mut mapped = chain(4);
        let before = sta(&mapped, &lib).worst_arrival_ps;
        for c in mapped.cells_mut() {
            c.size = 2.0;
        }
        let after = sta(&mapped, &lib).worst_arrival_ps;
        assert!(after < before);
    }

    #[test]
    fn flop_outputs_launch_late() {
        let lib = Library::standard();
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let d = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", d).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let mapped = map(&domino, &lib);
        let report = sta(&mapped, &lib);
        // The OR launches after clock-to-Q.
        assert!(report.worst_arrival_ps > lib.dff_clk_to_q_ps);
        assert!(report.clock_period_ps > 0.0);
    }

    #[test]
    fn and_chain_slower_than_or_chain() {
        let lib = Library::standard();
        let build = |use_and: bool| {
            let mut net = Network::new("k");
            let a = net.add_input("a").unwrap();
            let b = net.add_input("b").unwrap();
            let mut cur = if use_and {
                net.add_and([a, b]).unwrap()
            } else {
                net.add_or([a, b]).unwrap()
            };
            for _ in 0..4 {
                cur = if use_and {
                    net.add_and([cur, b]).unwrap()
                } else {
                    net.add_or([cur, b]).unwrap()
                };
            }
            net.add_output("f", cur).unwrap();
            let synth = DominoSynthesizer::new(&net).unwrap();
            let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
            map(&domino, &lib)
        };
        let t_and = sta(&build(true), &lib).worst_arrival_ps;
        let t_or = sta(&build(false), &lib).worst_arrival_ps;
        assert!(t_and > t_or, "series stacks must be slower");
    }
}
