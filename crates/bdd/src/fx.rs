//! A small FxHash-style hasher for the BDD kernel's hot tables.
//!
//! The default `std::collections::HashMap` hashes with SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per key. The BDD kernel hashes
//! billions of tiny fixed-width keys — `(level, lo, hi)` triples and
//! `(op, a, b)` pairs of `u32` handles — where collision-flooding is not a
//! threat (keys are internally generated node handles, never attacker
//! input). This module provides the rustc-style *Fx* multiply-rotate hash:
//! one rotate, one xor, one 64-bit multiply per word, which is what the
//! open-addressed tables in [`crate::table`] index with.
//!
//! The workspace builds offline, so this is a hand-rolled implementation
//! rather than the `rustc-hash` crate; the constant is the same golden-ratio
//! multiplier rustc uses.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: `2^64 / φ`, the 64-bit golden-ratio constant used by
/// rustc's `FxHasher`.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Finalization fold: a multiply-based hash carries its entropy in the
/// *high* bits (bit `i` of a product depends only on bits `≤ i` of the
/// inputs), but the power-of-two tables in [`crate::table`] index with the
/// *low* bits. One xor-shift folds the high half down.
#[inline]
fn finalize(h: u64) -> u64 {
    h ^ (h >> 32)
}

/// One-shot hash of a single 64-bit word.
#[inline]
#[must_use]
pub fn hash_word(w: u64) -> u64 {
    finalize(w.wrapping_mul(K))
}

/// One-shot hash of a `(level, lo, hi)`-style triple of `u32`s — the unique
/// table key shape. Words are folded with the same rotate-xor-multiply step
/// as [`FxHasher`].
#[inline]
#[must_use]
pub fn hash3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = 0u64;
    h = (h.rotate_left(5) ^ u64::from(a)).wrapping_mul(K);
    h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(K);
    h = (h.rotate_left(5) ^ u64::from(c)).wrapping_mul(K);
    finalize(h)
}

/// A streaming [`Hasher`] with the Fx mixing function, for use with
/// `HashMap`s that want cheap hashing of trusted keys (see
/// [`FxBuildHasher`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        finalize(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time; the tail is padded into one word. The
        // kernel's keys are fixed-width integers, so this path is cold.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into standard collections:
/// `HashMap<K, V, FxBuildHasher>`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hash3_spreads_small_keys() {
        // Sequential handles (the common case: fresh BDD nodes) must not
        // collapse onto a few buckets of a power-of-two table.
        let mask = 1023u64;
        let mut buckets = std::collections::HashSet::new();
        for i in 0..512u32 {
            buckets.insert(hash3(3, i, i + 1) & mask);
        }
        assert!(
            buckets.len() > 400,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let h = |vals: &[u32]| {
            let mut hasher = FxHasher::default();
            for &v in vals {
                hasher.write_u32(v);
            }
            hasher.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
        assert_eq!(h(&[7, 9, 11]), hash3(7, 9, 11));
    }

    #[test]
    fn std_hashmap_accepts_the_build_hasher() {
        let mut m: HashMap<(u32, u32), u32, FxBuildHasher> = HashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
    }

    #[test]
    fn byte_stream_matches_word_stream_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
