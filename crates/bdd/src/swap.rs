//! In-place exchange of two adjacent BDD levels — the primitive under
//! dynamic variable reordering ([`crate::dvo`]).
//!
//! # How a swap works on the dense arena
//!
//! A swap of levels `l` (variable `x`) and `l+1` (variable `y`) must leave
//! **every handle denoting the function it denoted before** — handles are
//! held by callers (circuit node tables, op-cache entries) that a swap
//! cannot reach. The arena makes this possible by rewriting nodes in
//! place:
//!
//! * nodes at `l+1` keep their structure and simply move up to level `l`
//!   (their function `ite(y, hi, lo)` is untouched — `y` just moved);
//! * nodes at `l` that do **not** depend on `y` (no child at `l+1`) keep
//!   their structure and move down to level `l+1`;
//! * nodes at `l` that do depend on `y` are rewritten in place through the
//!   Shannon identity `ite(x, B, A) = ite(y, ite(x, B₁, A₁), ite(x, B₀,
//!   A₀))`: the node becomes a `y`-decision at level `l` whose children
//!   are (possibly fresh) `x`-decisions at level `l+1`.
//!
//! The unique table is kept exact by retracting every key of the two
//! levels up front ([`UniqueTable::remove`](crate::table::UniqueTable)'s
//! backward-shift deletion) and re-interning the survivors; canonicity
//! arguments (inlined as debug asserts) guarantee no two re-interned nodes
//! collide. Children orphaned by a rewrite linger as dead arena nodes —
//! still structurally consistent, still interned, so hash-consing may
//! legitimately resurrect them — until [`BddManager::compact`] sweeps
//! them.
//!
//! The op cache is *not* invalidated per swap: a memoized `(op, a, b) → r`
//! stays correct because `a`, `b` and `r` all still denote the functions
//! they were memoized under. Compaction (which renumbers handles) is the
//! point where the cache must and does drop.
//!
//! Every node at the two levels is processed — live or dead — so the
//! whole arena stays consistent without reachability analysis. All
//! iteration is in ascending handle order and the unique-table probe
//! sequences are a pure function of the keys, so a swap is bit-identically
//! deterministic.

use crate::manager::{Bdd, BddError, BddManager, Node};

/// Per-level node lists for a swap campaign: `lists[l]` holds every arena
/// handle (live or dead) whose node sits at level `l`. Built once by
/// [`collect_levels`], maintained incrementally by [`swap_adjacent`] so a
/// sifting pass never rescans the arena.
pub(crate) type LevelLists = Vec<Vec<u32>>;

/// Scans the arena into per-level handle lists (ascending handle order).
pub(crate) fn collect_levels(m: &BddManager) -> LevelLists {
    let mut lists: LevelLists = vec![Vec::new(); m.n_vars()];
    for (i, nd) in m.nodes.iter().enumerate().skip(2) {
        lists[nd.level as usize].push(i as u32);
    }
    lists
}

/// Cofactors of child `c` with respect to the variable at `lower` level:
/// `(c|ᵥ₌₀, c|ᵥ₌₁)`. A child below `lower` (or a terminal) is constant in
/// that variable.
fn cofactors(m: &BddManager, c: Bdd, lower: u32) -> (Bdd, Bdd) {
    if !c.is_terminal() && m.nodes[c.index()].level == lower {
        let nd = m.nodes[c.index()];
        (nd.lo, nd.hi)
    } else {
        (c, c)
    }
}

/// Swaps levels `upper_level` and `upper_level + 1`, maintaining `lists`.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if the rewrite needs a fresh node past
/// the arena limit. The manager must be considered poisoned after that —
/// the swap is half-applied — so callers propagate the error outward.
pub(crate) fn swap_adjacent(
    m: &mut BddManager,
    upper_level: usize,
    lists: &mut LevelLists,
) -> Result<(), BddError> {
    let l = u32::try_from(upper_level).expect("level fits u32");
    let upper = std::mem::take(&mut lists[upper_level]);
    let lower = std::mem::take(&mut lists[upper_level + 1]);

    // Retract both levels' unique keys before any structure moves.
    for &u in &upper {
        let nd = m.nodes[u as usize];
        let removed = m.unique.remove(l, nd.lo.raw(), nd.hi.raw());
        debug_assert!(removed, "upper node {u} missing from unique table");
    }
    for &v in &lower {
        let nd = m.nodes[v as usize];
        let removed = m.unique.remove(l + 1, nd.lo.raw(), nd.hi.raw());
        debug_assert!(removed, "lower node {v} missing from unique table");
    }

    // The order bookkeeping swaps first so `mk` calls below intern under
    // the post-swap order.
    m.var_at_level.swap(upper_level, upper_level + 1);
    m.level_of_var[m.var_at_level[upper_level] as usize] = l;
    m.level_of_var[m.var_at_level[upper_level + 1] as usize] = l + 1;

    let mut new_upper: Vec<u32> = Vec::with_capacity(upper.len() + lower.len());
    let mut new_lower: Vec<u32> = Vec::with_capacity(upper.len());

    // Pass 1: upper nodes independent of the lower variable move down
    // unchanged. This must complete before any rewrite so a rewrite's
    // `mk` can *find* a moved-down node instead of duplicating its key.
    let mut rewrites: Vec<u32> = Vec::with_capacity(upper.len());
    for &u in &upper {
        let nd = m.nodes[u as usize];
        let lo_in = !nd.lo.is_terminal() && m.nodes[nd.lo.index()].level == l + 1;
        let hi_in = !nd.hi.is_terminal() && m.nodes[nd.hi.index()].level == l + 1;
        if lo_in || hi_in {
            rewrites.push(u);
        } else {
            m.nodes[u as usize].level = l + 1;
            m.unique.insert(l + 1, nd.lo.raw(), nd.hi.raw(), u);
            new_lower.push(u);
        }
    }

    // Pass 2: the remaining upper nodes are rewritten in place. Children
    // of an upper node are old lower nodes or deeper — never other upper
    // nodes — so the `level == l + 1` membership test in `cofactors`
    // stays exact even though pass 1 moved some uppers to that level.
    let arena_before = m.nodes.len();
    for &u in &rewrites {
        let nd = m.nodes[u as usize];
        let (a0, a1) = cofactors(m, nd.lo, l + 1);
        let (b0, b1) = cofactors(m, nd.hi, l + 1);
        let f0 = m.mk(l + 1, a0, b0)?;
        let f1 = m.mk(l + 1, a1, b1)?;
        // f0 == f1 would make the node redundant, which canonicity rules
        // out for a node that depends on both swapped variables.
        debug_assert_ne!(f0, f1, "rewritten node {u} became redundant");
        m.nodes[u as usize] = Node {
            level: l,
            lo: f0,
            hi: f1,
        };
        m.unique.insert(l, f0.raw(), f1.raw(), u);
        new_upper.push(u);
    }

    // Pass 3: old lower nodes move up unchanged.
    for &v in &lower {
        let nd = m.nodes[v as usize];
        m.nodes[v as usize].level = l;
        m.unique.insert(l, nd.lo.raw(), nd.hi.raw(), v);
        new_upper.push(v);
    }

    // Nodes `mk` created during pass 2 all sit at the new lower level.
    for i in arena_before..m.nodes.len() {
        new_lower.push(u32::try_from(i).expect("bdd arena exceeds u32"));
    }

    lists[upper_level] = new_upper;
    lists[upper_level + 1] = new_lower;
    Ok(())
}

impl BddManager {
    /// Swaps the variables at levels `upper_level` and `upper_level + 1`
    /// in place. Every existing [`Bdd`] handle keeps denoting the function
    /// it denoted before; only the variable order (and the shape of the
    /// shared graph) changes. Dead nodes orphaned by the swap stay in the
    /// arena until [`BddManager::compact`].
    ///
    /// Swapping the same pair twice restores the original order, node
    /// count and [`BddManager::digest`] — the involution the reorder
    /// proptests pin.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `upper_level + 1` is not a
    /// valid level, or [`BddError::NodeLimit`] on arena exhaustion (the
    /// manager is poisoned in that case).
    pub fn swap_adjacent_levels(&mut self, upper_level: usize) -> Result<(), BddError> {
        if upper_level + 1 >= self.n_vars() {
            return Err(BddError::UnknownVariable {
                var: upper_level + 1,
                n_vars: self.n_vars(),
            });
        }
        let mut lists = collect_levels(self);
        swap_adjacent(self, upper_level, &mut lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f = a·b + c·d, plus g = a⊕c to share structure.
    fn setup() -> (BddManager, Bdd, Bdd) {
        let mut m = BddManager::new(4);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let d = m.var(3).unwrap();
        let ab = m.and(a, b).unwrap();
        let cd = m.and(c, d).unwrap();
        let f = m.or(ab, cd).unwrap();
        let g = m.xor(a, c).unwrap();
        (m, f, g)
    }

    fn eval_table(m: &BddManager, root: Bdd) -> Vec<bool> {
        (0..16u32)
            .map(|bits| {
                let vals: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
                m.eval(root, &vals).unwrap()
            })
            .collect()
    }

    #[test]
    fn swap_preserves_semantics_of_every_handle() {
        let (mut m, f, g) = setup();
        let table_f = eval_table(&m, f);
        let table_g = eval_table(&m, g);
        for level in 0..3 {
            m.swap_adjacent_levels(level).unwrap();
            assert_eq!(eval_table(&m, f), table_f, "f broken after swap {level}");
            assert_eq!(eval_table(&m, g), table_g, "g broken after swap {level}");
        }
    }

    #[test]
    fn swap_twice_is_identity_on_order_count_and_digest() {
        let (mut m, f, g) = setup();
        let order = m.order();
        let count = m.node_count(&[f, g]);
        let digest = m.digest(&[f, g]);
        m.swap_adjacent_levels(1).unwrap();
        assert_ne!(m.order(), order, "swap changed nothing");
        m.swap_adjacent_levels(1).unwrap();
        assert_eq!(m.order(), order);
        assert_eq!(m.node_count(&[f, g]), count);
        assert_eq!(m.digest(&[f, g]), digest);
    }

    #[test]
    fn swap_updates_order_bookkeeping() {
        let (mut m, _, _) = setup();
        m.swap_adjacent_levels(0).unwrap();
        assert_eq!(m.order(), vec![1, 0, 2, 3]);
        // var() must now place variable 1 at the root level.
        let b = m.var(1).unwrap();
        assert_eq!(m.nodes[b.index()].level, 0);
    }

    #[test]
    fn out_of_range_level_rejected() {
        let (mut m, _, _) = setup();
        assert!(matches!(
            m.swap_adjacent_levels(3),
            Err(BddError::UnknownVariable { .. })
        ));
        let mut one = BddManager::new(1);
        assert!(one.swap_adjacent_levels(0).is_err());
    }

    #[test]
    fn unique_table_stays_exact_across_swaps() {
        let (mut m, f, g) = setup();
        for level in [0, 1, 2, 1, 0, 2] {
            m.swap_adjacent_levels(level).unwrap();
        }
        // Every arena node must still be interned under its current key.
        let nodes: Vec<(usize, Node)> = m.nodes.iter().copied().enumerate().skip(2).collect();
        for (i, nd) in nodes {
            assert_eq!(
                m.unique.get(nd.level, nd.lo.raw(), nd.hi.raw()),
                Some(i as u32),
                "node {i} lost its unique-table entry"
            );
        }
        // And the live graph is still canonical: rebuilding from scratch
        // under the same order yields the same digest.
        let digest = m.digest(&[f, g]);
        let mut fresh = BddManager::with_order(m.order()).unwrap();
        let a = fresh.var(0).unwrap();
        let b = fresh.var(1).unwrap();
        let c = fresh.var(2).unwrap();
        let d = fresh.var(3).unwrap();
        let ab = fresh.and(a, b).unwrap();
        let cd = fresh.and(c, d).unwrap();
        let f2 = fresh.or(ab, cd).unwrap();
        let g2 = fresh.xor(a, c).unwrap();
        assert_eq!(fresh.digest(&[f2, g2]), digest);
    }
}
