//! Circuit-driven BDD variable ordering heuristics (paper §4.2.2).
//!
//! The paper orders BDD variables by two principles:
//!
//! 1. *variables are ordered in the reverse of the order that the circuit
//!    inputs are first visited when the gates are topologically traversed*,
//! 2. *gates that are at the same topological level are traversed in the
//!    decreasing order of the cardinality of their fanout cones*.
//!
//! Together these place a variable **low** in the BDD (near the terminals)
//! when it is near the primary inputs or has a large fanout cone — which
//! maximizes sharing in the highly convergent, flattened networks that
//! domino blocks are.
//!
//! [`paper_order`] implements the heuristic; [`topological_order`] is the
//! non-reversed baseline and [`sandwich_disturbed`] the "unnaturally
//! sandwiched" order of Figure 10; [`random_order`] is a seeded shuffle for
//! ablations.

use domino_netlist::Network;

/// First-visit order of the source variables under the paper's traversal:
/// gates visited level by level, within a level in decreasing fanout-cone
/// cardinality; each gate visits its fanins left to right and records any
/// not-yet-seen source. Sources never visited (dangling inputs) are appended
/// in declaration order.
///
/// Returns source-variable indices (see
/// [`source_nodes`](crate::circuit::source_nodes)).
fn first_visit_sequence(net: &Network) -> Vec<usize> {
    let sources = crate::circuit::source_nodes(net);
    let mut var_of = vec![usize::MAX; net.len()];
    for (i, id) in sources.iter().enumerate() {
        var_of[id.index()] = i;
    }
    let levels = net.levels();
    let cone_sizes = net.fanout_cone_sizes();

    // Gates grouped by level.
    let mut gates: Vec<domino_netlist::NodeId> = net
        .node_ids()
        .filter(|&id| net.node(id).kind.is_gate())
        .collect();
    gates.sort_by(|&a, &b| {
        levels
            .level(a)
            .cmp(&levels.level(b))
            .then(cone_sizes[b.index()].cmp(&cone_sizes[a.index()]))
            .then(a.cmp(&b))
    });

    let mut seen = vec![false; sources.len()];
    let mut seq = Vec::with_capacity(sources.len());
    for g in gates {
        for &f in net.node(g).comb_fanins() {
            let v = var_of[f.index()];
            if v != usize::MAX && !seen[v] {
                seen[v] = true;
                seq.push(v);
            }
        }
    }
    for (v, s) in seen.iter().enumerate() {
        if !s {
            seq.push(v);
        }
    }
    seq
}

/// The paper's ordering heuristic: the reverse of the first-visit sequence,
/// so that early-visited variables (near the PIs, large fanout cones) sit at
/// the *bottom* of the BDD.
///
/// The result is a permutation suitable for
/// [`BddManager::with_order`](crate::BddManager::with_order): element `l` is
/// the variable at level `l` (root-most first).
pub fn paper_order(net: &Network) -> Vec<usize> {
    let mut seq = first_visit_sequence(net);
    seq.reverse();
    seq
}

/// Baseline: the raw first-visit (topological) order, *without* the
/// reversal — the 11-node ordering of Figure 10.
pub fn topological_order(net: &Network) -> Vec<usize> {
    first_visit_sequence(net)
}

/// The "disturbed signal grouping" order of Figure 10: take an order and
/// move its *last* variable up to position 1, sandwiching it between
/// variables it shares no gate with. Returns the input unchanged when it has
/// fewer than three variables.
pub fn sandwich_disturbed(mut order: Vec<usize>) -> Vec<usize> {
    if order.len() >= 3 {
        let last = order.pop().expect("len >= 3");
        order.insert(1, last);
    }
    order
}

/// A seeded pseudo-random permutation of `n` variables (xorshift64*), for
/// ordering ablations without pulling a RNG dependency into the library.
pub fn random_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    /// A convergent two-output circuit: big-cone gate P consumes a,b; Q
    /// consumes b,c; R consumes Q and d at a deeper level.
    fn convergent() -> Network {
        let mut net = Network::new("conv");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let p = net.add_and([a, b]).unwrap();
        let q = net.add_or([b, c]).unwrap();
        let r = net.add_and([q, d]).unwrap();
        let f = net.add_or([p, r]).unwrap();
        net.add_output("f", f).unwrap();
        net
    }

    #[test]
    fn orders_are_permutations() {
        let net = convergent();
        for order in [paper_order(&net), topological_order(&net)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn paper_order_is_reverse_of_topological() {
        let net = convergent();
        let mut topo = topological_order(&net);
        topo.reverse();
        assert_eq!(paper_order(&net), topo);
    }

    #[test]
    fn same_level_gates_sorted_by_fanout_cone() {
        // Two level-1 gates: g1 has a larger fanout cone than g2, so g1's
        // inputs are visited first even though g2 was created first.
        let mut net = Network::new("cones");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let g2 = net.add_and([c, d]).unwrap(); // small cone (1 consumer)
        let g1 = net.add_and([a, b]).unwrap(); // large cone (3 consumers)
        let x1 = net.add_not(g1).unwrap();
        let x2 = net.add_not(g1).unwrap();
        let x3 = net.add_and([g1, g2]).unwrap();
        net.add_output("x1", x1).unwrap();
        net.add_output("x2", x2).unwrap();
        net.add_output("x3", x3).unwrap();
        let topo = topological_order(&net);
        // a (var 0) and b (var 1) before c (2), d (3).
        assert_eq!(topo, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unused_inputs_still_ordered() {
        let mut net = Network::new("dangling");
        let a = net.add_input("a").unwrap();
        let _unused = net.add_input("u").unwrap();
        let n = net.add_not(a).unwrap();
        net.add_output("f", n).unwrap();
        let order = paper_order(&net);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn sandwich_moves_last_to_second() {
        assert_eq!(sandwich_disturbed(vec![4, 3, 2, 1, 0]), vec![4, 0, 3, 2, 1]);
        assert_eq!(sandwich_disturbed(vec![1, 0]), vec![1, 0]);
    }

    #[test]
    fn random_order_is_permutation_and_seed_dependent() {
        let o1 = random_order(20, 1);
        let o2 = random_order(20, 2);
        let mut s = o1.clone();
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
        assert_ne!(o1, o2);
        assert_eq!(o1, random_order(20, 1));
    }

    #[test]
    fn paper_order_never_worse_on_convergent_example() {
        // The heuristic's whole point: fewer shared nodes than the naive
        // topological order on convergent circuits.
        let net = convergent();
        let good = crate::circuit::CircuitBdds::build_with_order(&net, paper_order(&net))
            .unwrap()
            .total_node_count();
        let bad = crate::circuit::CircuitBdds::build_with_order(&net, topological_order(&net))
            .unwrap()
            .total_node_count();
        assert!(good <= bad, "paper order {good} vs topological {bad}");
    }
}
