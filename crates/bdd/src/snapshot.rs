//! Versioned text serialization of BDDs with a digest-verified roundtrip.
//!
//! The on-disk node order is a deterministic **postorder DFS** over the
//! roots (children before parents, `lo` before `hi`, roots in declared
//! order), so every serialized node references only already-emitted ids and
//! deserialization is a single forward pass of `BddManager::mk` calls —
//! the rebuilt arena lays nodes out in exactly the file order. The same
//! order drives [`BddManager::compact_postorder`], so a deserialized
//! manager is born compacted the way `remap_compact` would leave it.
//!
//! Format (line-oriented, embedded in the checksummed store container):
//!
//! ```text
//! bddsnap 1
//! vars <n_vars>
//! order <var-at-level-0> <var-at-level-1> ...
//! nodes <count>
//! <level> <lo-id> <hi-id>          (count lines; ids 0/1 are terminals,
//!                                   fresh nodes take 2, 3, ... in order)
//! roots <id> <id> ...
//! digest <16 lowercase hex digits>
//! ```
//!
//! `digest` is [`BddManager::digest`] over the roots — a function of the
//! represented functions only. [`BddManager::deserialize_from`] recomputes
//! it after rebuilding and refuses to return a manager whose digest does
//! not match the recorded one, so a snapshot that survives the container
//! checksum but was mangled in transit still cannot produce wrong answers.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::manager::{Bdd, BddError, BddManager};

/// Magic first line of a serialized BDD section, including the format
/// version. Bump the version on any incompatible change; old readers
/// reject unknown versions and callers rebuild from scratch.
pub const BDD_SNAPSHOT_HEADER: &str = "bddsnap 1";

/// Errors from [`BddManager::deserialize_from`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The input is not a well-formed snapshot (wrong header/version,
    /// truncated, or a field failed to parse or validate).
    Malformed(String),
    /// The rebuilt manager's digest does not match the recorded one.
    DigestMismatch {
        /// Digest recorded in the snapshot.
        recorded: u64,
        /// Digest recomputed from the rebuilt arena.
        rebuilt: u64,
    },
    /// Rebuilding hit a BDD construction error (e.g. the node limit).
    Bdd(BddError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(what) => write!(f, "malformed bdd snapshot: {what}"),
            SnapshotError::DigestMismatch { recorded, rebuilt } => write!(
                f,
                "bdd snapshot digest mismatch: recorded {recorded:016x}, rebuilt {rebuilt:016x}"
            ),
            SnapshotError::Bdd(e) => write!(f, "bdd snapshot rebuild failed: {e}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<BddError> for SnapshotError {
    fn from(e: BddError) -> Self {
        SnapshotError::Bdd(e)
    }
}

fn malformed(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(what.into())
}

impl BddManager {
    /// The non-terminal nodes reachable from `roots` in postorder DFS
    /// (children before parents, `lo` before `hi`, roots in order) — the
    /// serialization and [`BddManager::compact_postorder`] layout.
    fn postorder(&self, roots: &[Bdd]) -> Vec<u32> {
        const UNSEEN: u8 = 0;
        const EXPANDED: u8 = 1;
        const DONE: u8 = 2;
        let mut state = vec![UNSEEN; self.nodes.len()];
        state[0] = DONE;
        state[1] = DONE;
        let mut order: Vec<u32> = Vec::new();
        let mut stack: Vec<Bdd> = Vec::new();
        for &r in roots.iter().rev() {
            stack.push(r);
        }
        while let Some(&b) = stack.last() {
            let i = b.index();
            match state[i] {
                UNSEEN => {
                    state[i] = EXPANDED;
                    let n = self.nodes[i];
                    // Push hi first so lo is completed (and numbered) first.
                    if state[n.hi.index()] == UNSEEN {
                        stack.push(n.hi);
                    }
                    if state[n.lo.index()] == UNSEEN {
                        stack.push(n.lo);
                    }
                }
                EXPANDED => {
                    state[i] = DONE;
                    order.push(b.raw());
                    stack.pop();
                }
                _ => {
                    stack.pop();
                }
            }
        }
        order
    }

    /// Serializes the function DAG reachable from `roots` into `out` in the
    /// versioned `bddsnap` text format, nodes in postorder DFS, closed with
    /// the roots' canonical [`BddManager::digest`].
    ///
    /// The output is arena-layout independent: two managers holding the
    /// same functions under the same variable order serialize identically.
    pub fn serialize_into(&self, roots: &[Bdd], out: &mut String) {
        let order = self.postorder(roots);
        let mut id = vec![0u32; self.nodes.len()];
        id[1] = 1;
        writeln!(out, "{BDD_SNAPSHOT_HEADER}").expect("string write");
        writeln!(out, "vars {}", self.n_vars()).expect("string write");
        out.push_str("order");
        for &v in &self.var_at_level {
            write!(out, " {v}").expect("string write");
        }
        out.push('\n');
        writeln!(out, "nodes {}", order.len()).expect("string write");
        for (next, &i) in (2u32..).zip(order.iter()) {
            id[i as usize] = next;
            let n = self.nodes[i as usize];
            writeln!(out, "{} {} {}", n.level, id[n.lo.index()], id[n.hi.index()])
                .expect("string write");
        }
        out.push_str("roots");
        for &r in roots {
            write!(out, " {}", id[r.index()]).expect("string write");
        }
        out.push('\n');
        writeln!(out, "digest {:016x}", self.digest(roots)).expect("string write");
    }

    /// Rebuilds a manager (and the root handles, positionally) from text
    /// produced by [`BddManager::serialize_into`], verifying the recorded
    /// digest against the rebuilt arena before returning.
    ///
    /// The rebuilt arena holds exactly the serialized nodes in file order
    /// (postorder DFS) plus the two terminals; traffic counters start at
    /// zero, so callers that care about build-time statistics must carry
    /// them out of band.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for structural damage,
    /// [`SnapshotError::DigestMismatch`] when the rebuilt functions differ
    /// from the recorded digest, [`SnapshotError::Bdd`] if reconstruction
    /// itself fails.
    pub fn deserialize_from(text: &str) -> Result<(Self, Vec<Bdd>), SnapshotError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| malformed("empty input"))?;
        if header != BDD_SNAPSHOT_HEADER {
            return Err(malformed(format!(
                "unsupported header {header:?} (expected {BDD_SNAPSHOT_HEADER:?})"
            )));
        }
        let n_vars: usize = parse_field(lines.next(), "vars")?
            .parse()
            .map_err(|_| malformed("vars count is not a number"))?;
        let order_body = parse_field(lines.next(), "order")?;
        let order: Vec<usize> = order_body
            .split_ascii_whitespace()
            .map(|t| t.parse().map_err(|_| malformed("order entry not a number")))
            .collect::<Result<_, _>>()?;
        if order.len() != n_vars {
            return Err(malformed(format!(
                "order has {} entries for {n_vars} vars",
                order.len()
            )));
        }
        let n_nodes: usize = parse_field(lines.next(), "nodes")?
            .parse()
            .map_err(|_| malformed("node count is not a number"))?;
        let mut manager = BddManager::with_order(order)
            .map_err(|_| malformed("order is not a permutation of the variables"))?;
        manager.reserve(n_nodes + 2);
        let mut handles: Vec<Bdd> = Vec::with_capacity(n_nodes + 2);
        handles.push(Bdd::FALSE);
        handles.push(Bdd::TRUE);
        for k in 0..n_nodes {
            let line = lines
                .next()
                .ok_or_else(|| malformed(format!("truncated at node {k} of {n_nodes}")))?;
            let mut it = line.split_ascii_whitespace();
            let level: u32 = next_num(&mut it, "node level")?;
            let lo: usize = next_num(&mut it, "node lo")?;
            let hi: usize = next_num(&mut it, "node hi")?;
            if it.next().is_some() {
                return Err(malformed(format!("trailing tokens on node line {k}")));
            }
            if level as usize >= n_vars {
                return Err(malformed(format!("node {k} level {level} out of range")));
            }
            // Postorder: children strictly precede their parent.
            if lo >= handles.len() || hi >= handles.len() {
                return Err(malformed(format!("node {k} references an undefined child")));
            }
            if lo == hi {
                return Err(malformed(format!("node {k} is not reduced (lo == hi)")));
            }
            let b = manager.mk(level, handles[lo], handles[hi])?;
            handles.push(b);
        }
        let roots_body = parse_field(lines.next(), "roots")?;
        let roots: Vec<Bdd> = roots_body
            .split_ascii_whitespace()
            .map(|t| {
                let id: usize = t.parse().map_err(|_| malformed("root id not a number"))?;
                handles
                    .get(id)
                    .copied()
                    .ok_or_else(|| malformed(format!("root id {id} out of range")))
            })
            .collect::<Result<_, _>>()?;
        let digest_hex = parse_field(lines.next(), "digest")?;
        let recorded = u64::from_str_radix(digest_hex.trim(), 16)
            .map_err(|_| malformed("digest is not 16 hex digits"))?;
        if lines.next().is_some() {
            return Err(malformed("trailing lines after digest"));
        }
        let rebuilt = manager.digest(&roots);
        if rebuilt != recorded {
            return Err(SnapshotError::DigestMismatch { recorded, rebuilt });
        }
        Ok((manager, roots))
    }

    /// [`BddManager::compact`], but renumbering survivors in the postorder
    /// DFS serialization order instead of ascending old-handle order — so a
    /// compacted arena and a deserialized snapshot of the same functions
    /// have identical layouts, and probability sweeps (which walk handles
    /// densely) see children immediately before their parents.
    ///
    /// Same contract otherwise: drops unreachable nodes, rebuilds the
    /// unique table, clears the op cache, keeps traffic counters, returns
    /// the remapped `roots` positionally. The digest is unchanged (it is
    /// layout-independent).
    pub fn compact_postorder(&mut self, roots: &[Bdd]) -> Vec<Bdd> {
        use crate::manager::Node;
        let order = self.postorder(roots);
        let mut map = vec![0u32; self.nodes.len()];
        map[1] = 1;
        for (next, &i) in (2u32..).zip(order.iter()) {
            map[i as usize] = next;
        }
        let mut new_nodes = Vec::with_capacity(order.len() + 2);
        new_nodes.push(self.nodes[0]);
        new_nodes.push(self.nodes[1]);
        for &i in &order {
            let nd = self.nodes[i as usize];
            new_nodes.push(Node {
                level: nd.level,
                lo: Bdd::from_raw(map[nd.lo.index()]),
                hi: Bdd::from_raw(map[nd.hi.index()]),
            });
        }
        self.nodes = new_nodes;
        self.unique.clear();
        for (i, nd) in self.nodes.iter().enumerate().skip(2) {
            self.unique
                .insert(nd.level, nd.lo.raw(), nd.hi.raw(), i as u32);
        }
        self.op_cache.clear();
        roots
            .iter()
            .map(|r| Bdd::from_raw(map[r.index()]))
            .collect()
    }
}

fn parse_field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, SnapshotError> {
    let line = line.ok_or_else(|| malformed(format!("missing {key} line")))?;
    line.strip_prefix(key)
        .map(str::trim_start)
        .ok_or_else(|| malformed(format!("expected {key} line, got {line:?}")))
}

fn next_num<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, SnapshotError> {
    it.next()
        .ok_or_else(|| malformed(format!("missing {what}")))?
        .parse()
        .map_err(|_| malformed(format!("{what} is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (BddManager, Vec<Bdd>) {
        let mut m = BddManager::with_order(vec![2, 0, 1]).unwrap();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let g = m.xor(a, c).unwrap();
        let ng = m.not(g).unwrap();
        (m, vec![f, g, ng, Bdd::TRUE, f])
    }

    #[test]
    fn roundtrip_preserves_digest_counts_and_order() {
        let (m, roots) = sample();
        let mut text = String::new();
        m.serialize_into(&roots, &mut text);
        let (m2, roots2) = BddManager::deserialize_from(&text).unwrap();
        assert_eq!(m2.digest(&roots2), m.digest(&roots));
        assert_eq!(m2.order(), m.order());
        assert_eq!(m2.node_count(&roots2), m.node_count(&roots));
        // Reserialization is byte-identical: the rebuilt arena is already
        // in postorder file order.
        let mut text2 = String::new();
        m2.serialize_into(&roots2, &mut text2);
        assert_eq!(text, text2);
    }

    #[test]
    fn serialization_is_layout_independent() {
        let (m, roots) = sample();
        // Build the same functions with extra garbage interleaved, then
        // compare serializations.
        let mut m2 = BddManager::with_order(vec![2, 0, 1]).unwrap();
        let a = m2.var(0).unwrap();
        let b = m2.var(1).unwrap();
        let c = m2.var(2).unwrap();
        let junk = m2.xor(b, c).unwrap();
        let _ = m2.not(junk).unwrap();
        let ab = m2.and(a, b).unwrap();
        let f = m2.or(ab, c).unwrap();
        let g = m2.xor(a, c).unwrap();
        let ng = m2.not(g).unwrap();
        let roots2 = vec![f, g, ng, Bdd::TRUE, f];
        let (mut s1, mut s2) = (String::new(), String::new());
        m.serialize_into(&roots, &mut s1);
        m2.serialize_into(&roots2, &mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn compact_postorder_matches_file_layout_and_digest() {
        let (mut m, roots) = sample();
        let before = m.digest(&roots);
        let mut text = String::new();
        m.serialize_into(&roots, &mut text);
        let roots2 = m.compact_postorder(&roots);
        assert_eq!(m.digest(&roots2), before);
        let mut text2 = String::new();
        m.serialize_into(&roots2, &mut text2);
        assert_eq!(text, text2);
        // Compacted arena == deserialized arena, node for node.
        let (md, rootsd) = BddManager::deserialize_from(&text).unwrap();
        assert_eq!(md.stats().nodes, m.stats().nodes);
        assert_eq!(rootsd, roots2);
        // Still a working manager: hash-consing finds the survivors.
        let p1 = m.signal_probabilities(&roots2, &[0.3, 0.6, 0.9]).unwrap();
        let p2 = md.signal_probabilities(&rootsd, &[0.3, 0.6, 0.9]).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn wrong_header_rejected() {
        let (m, roots) = sample();
        let mut text = String::new();
        m.serialize_into(&roots, &mut text);
        let bad = text.replacen("bddsnap 1", "bddsnap 2", 1);
        assert!(matches!(
            BddManager::deserialize_from(&bad),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let (m, roots) = sample();
        let mut text = String::new();
        m.serialize_into(&roots, &mut text);
        let lines: Vec<&str> = text.lines().collect();
        for cut in 0..lines.len() {
            let partial = lines[..cut].join("\n");
            assert!(
                BddManager::deserialize_from(&partial).is_err(),
                "accepted a snapshot truncated to {cut} lines"
            );
        }
    }

    #[test]
    fn digest_tamper_rejected() {
        let (m, roots) = sample();
        let mut text = String::new();
        m.serialize_into(&roots, &mut text);
        // Swap the recorded roots for different (valid) ids: digest check
        // must catch the semantic change.
        let tampered: String = text
            .lines()
            .map(|l| {
                if l.starts_with("roots") {
                    "roots 1 1 1 1 1\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(matches!(
            BddManager::deserialize_from(&tampered),
            Err(SnapshotError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn undefined_child_rejected() {
        // A node line referencing an id not yet defined (forward ref).
        let text = "bddsnap 1\nvars 1\norder 0\nnodes 1\n0 0 7\nroots 2\ndigest 0\n";
        assert!(matches!(
            BddManager::deserialize_from(text),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
