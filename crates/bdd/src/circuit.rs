//! Building BDDs for every node of a Boolean network.
//!
//! The BDD *variables* of a network are its combinational sources: primary
//! inputs first, then latch outputs (a latch output is a free variable of the
//! combinational block it feeds — the sequential partitioning in
//! `domino-sgraph` decides what probability it carries). The variable index
//! of the `i`-th source is `i`; see [`source_nodes`].

use std::collections::HashMap;

use domino_netlist::{Network, NodeId, NodeKind};

use crate::dvo::{self, ReorderConfig, ReorderMode, ReorderOutcome};
use crate::manager::{Bdd, BddError, BddManager};
use crate::ordering;

/// The combinational source nodes of `net` in variable-index order: primary
/// inputs in declaration order, then latches in declaration order.
pub fn source_nodes(net: &Network) -> Vec<NodeId> {
    net.inputs()
        .iter()
        .chain(net.latches().iter())
        .copied()
        .collect()
}

/// BDDs for every node of a network, sharing one [`BddManager`].
///
/// # Example
///
/// ```
/// use domino_bdd::circuit::CircuitBdds;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("c");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_and([a, b])?;
/// net.add_output("f", g)?;
///
/// let bdds = CircuitBdds::build(&net)?;
/// let p = bdds.node_probabilities(&net, &[0.9, 0.9])?;
/// assert!((p[g.index()] - 0.81).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBdds {
    manager: BddManager,
    node_funcs: Vec<Bdd>,
}

impl CircuitBdds {
    /// Builds BDDs for all nodes using the paper's §4.2.2 variable ordering
    /// heuristic ([`ordering::paper_order`]).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if construction blows up.
    pub fn build(net: &Network) -> Result<Self, BddError> {
        Self::build_with_order(net, ordering::paper_order(net))
    }

    /// Builds BDDs for all nodes with an explicit variable order:
    /// `order[l]` is the source-variable index placed at BDD level `l`
    /// (level 0 is root-most).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `order` is not a permutation
    /// of the source indices, or [`BddError::NodeLimit`] on blow-up.
    pub fn build_with_order(net: &Network, order: Vec<usize>) -> Result<Self, BddError> {
        let (bdds, _) = Self::build_reordered(net, order, &ReorderConfig::default())?;
        Ok(bdds)
    }

    /// Builds BDDs for all nodes under the given start order, running
    /// dynamic variable reordering per `reorder`:
    ///
    /// * [`ReorderMode::Off`] — exactly [`CircuitBdds::build_with_order`]
    ///   (bit-identical arena, stats and probabilities), outcome `None`;
    /// * [`ReorderMode::Sift`] — one sifting campaign after construction,
    ///   then compaction;
    /// * [`ReorderMode::Auto`] — sifts (and compacts) whenever the arena
    ///   crosses the fixed doubling ladder of node-count thresholds during
    ///   construction, and compacts once more at the end. Triggers depend
    ///   only on deterministic arena sizes, never on timing.
    ///
    /// For the two active modes the returned [`ReorderOutcome`] records
    /// swap counts, node counts and the final order (equal to the start
    /// order when nothing fired).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBdds::build_with_order`].
    pub fn build_reordered(
        net: &Network,
        order: Vec<usize>,
        reorder: &ReorderConfig,
    ) -> Result<(Self, Option<ReorderOutcome>), BddError> {
        let sources = source_nodes(net);
        if order.len() != sources.len() {
            return Err(BddError::ArityMismatch {
                expected: sources.len(),
                got: order.len(),
            });
        }
        let mut manager = BddManager::with_order(order)?;
        // Shared BDDs for block-sized control logic land near the gate
        // count; pre-sizing the kernel tables avoids mid-build rehashes.
        manager.reserve(net.len());
        let var_of: HashMap<NodeId, usize> =
            sources.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut node_funcs = vec![Bdd::FALSE; net.len()];
        let mut outcome = match reorder.mode {
            ReorderMode::Off => None,
            _ => Some(ReorderOutcome::default()),
        };
        // The auto ladder: first sift when the arena reaches the trigger,
        // then at deterministic doublings from wherever the last sift
        // left the (compacted) arena.
        let mut next_trigger = reorder.auto_trigger_nodes.max(4);
        let mut auto_fired = false;
        for id in net.topo_order() {
            let node = net.node(id);
            let f = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => manager.var(var_of[&id])?,
                NodeKind::Constant(v) => manager.constant(v),
                NodeKind::Not => {
                    let x = node_funcs[node.fanins[0].index()];
                    manager.not(x)?
                }
                // Feed fanin functions straight from the arena — no
                // per-gate temporary Vec on the construction hot path.
                NodeKind::And => {
                    manager.and_many(node.fanins.iter().map(|f| node_funcs[f.index()]))?
                }
                NodeKind::Or => {
                    manager.or_many(node.fanins.iter().map(|f| node_funcs[f.index()]))?
                }
            };
            node_funcs[id.index()] = f;
            if reorder.mode == ReorderMode::Auto && manager.stats().nodes >= next_trigger {
                auto_fired = true;
                let sifted = dvo::sift(&mut manager, &node_funcs, reorder.max_growth_pct)?;
                outcome
                    .as_mut()
                    .expect("auto mode records an outcome")
                    .absorb(&sifted);
                node_funcs = manager.compact(&node_funcs);
                next_trigger = manager.stats().nodes.max(next_trigger) * 2;
            }
        }
        let run_final = match reorder.mode {
            ReorderMode::Off => false,
            ReorderMode::Sift => true,
            ReorderMode::Auto => auto_fired,
        };
        if run_final {
            let sifted = dvo::sift(&mut manager, &node_funcs, reorder.max_growth_pct)?;
            outcome
                .as_mut()
                .expect("active mode records an outcome")
                .absorb(&sifted);
            node_funcs = manager.compact(&node_funcs);
        }
        if let Some(o) = outcome.as_mut() {
            // A mode that never fired still records where the order ended
            // up (== the start order) so stats always carry it.
            if o.final_order.is_empty() {
                o.final_order = manager.order();
                o.nodes_before = manager.node_count(&node_funcs);
                o.nodes_after = o.nodes_before;
            }
        }
        Ok((
            CircuitBdds {
                manager,
                node_funcs,
            },
            outcome,
        ))
    }

    /// The underlying manager.
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// BDD of a node.
    pub fn node_bdd(&self, id: NodeId) -> Bdd {
        self.node_funcs[id.index()]
    }

    /// BDDs of the primary outputs, in declaration order.
    pub fn output_bdds(&self, net: &Network) -> Vec<Bdd> {
        net.outputs()
            .iter()
            .map(|o| self.node_funcs[o.driver.index()])
            .collect()
    }

    /// Shared node count over the primary-output BDDs — the Figure 10
    /// metric.
    pub fn output_node_count(&self, net: &Network) -> usize {
        self.manager.node_count(&self.output_bdds(net))
    }

    /// Shared node count over *all* circuit node BDDs.
    pub fn total_node_count(&self) -> usize {
        self.manager.node_count(&self.node_funcs)
    }

    /// Canonical structural digest over all circuit node BDDs
    /// ([`BddManager::digest`]): a function of the represented functions
    /// only, independent of arena layout — equal before and after
    /// compaction, and equal to a from-scratch build under the same order.
    pub fn bdd_digest(&self) -> u64 {
        self.manager.digest(&self.node_funcs)
    }

    /// Number of per-node BDD handles (== the network's node count at
    /// build time). Snapshot loaders use this to cross-check a
    /// deserialized instance against the network it claims to describe.
    pub fn func_count(&self) -> usize {
        self.node_funcs.len()
    }

    /// Serializes manager and per-node root handles into the versioned
    /// `bddsnap` text format ([`BddManager::serialize_into`] over all node
    /// functions). Arena-layout independent; closed with the canonical
    /// digest, so [`CircuitBdds::deserialize_from`] can verify the
    /// roundtrip.
    pub fn serialize_into(&self, out: &mut String) {
        self.manager.serialize_into(&self.node_funcs, out);
    }

    /// Rebuilds a [`CircuitBdds`] from [`CircuitBdds::serialize_into`]
    /// text, verifying the recorded digest. The rebuilt arena is in
    /// serialization (postorder DFS) order — identical to what
    /// [`CircuitBdds::remap_compact`] leaves behind — so snapshots load
    /// pre-compacted.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::snapshot::SnapshotError`] for malformed input
    /// or a digest mismatch.
    pub fn deserialize_from(text: &str) -> Result<Self, crate::snapshot::SnapshotError> {
        let (manager, node_funcs) = BddManager::deserialize_from(text)?;
        Ok(CircuitBdds {
            manager,
            node_funcs,
        })
    }

    /// Compacts the arena into serialization (postorder DFS) order
    /// ([`BddManager::compact_postorder`]): children land immediately
    /// before their parents, which is the access pattern of the
    /// probability sweeps, and the layout matches what a snapshot load
    /// produces. Functions, digest and probabilities are unchanged.
    pub fn remap_compact(&mut self) {
        self.node_funcs = self.manager.compact_postorder(&self.node_funcs);
    }

    /// Runs a sifting campaign over the already-built BDDs and compacts
    /// the arena. Probabilities and evaluation results are unchanged
    /// (same functions, new shapes); node counts typically shrink.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if a swap exhausts the arena limit.
    pub fn reorder(&mut self, reorder: &ReorderConfig) -> Result<ReorderOutcome, BddError> {
        let outcome = dvo::sift(&mut self.manager, &self.node_funcs, reorder.max_growth_pct)?;
        self.node_funcs = self.manager.compact(&self.node_funcs);
        Ok(outcome)
    }

    /// Exact signal probability of every node (indexed by node arena index),
    /// given per-source probabilities in source order (PIs then latches; see
    /// [`source_nodes`]).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::ArityMismatch`] /
    /// [`BddError::InvalidProbability`] for bad probability vectors.
    pub fn node_probabilities(
        &self,
        net: &Network,
        source_probs: &[f64],
    ) -> Result<Vec<f64>, BddError> {
        let _ = net;
        self.manager
            .signal_probabilities(&self.node_funcs, source_probs)
    }

    /// [`CircuitBdds::node_probabilities`] writing into a caller-owned
    /// buffer (cleared first), so sweep loops reuse one allocation across
    /// evaluations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBdds::node_probabilities`].
    pub fn node_probabilities_into(
        &self,
        net: &Network,
        source_probs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), BddError> {
        let _ = net;
        self.manager
            .signal_probabilities_into(&self.node_funcs, source_probs, out)
    }
}

/// Formally checks that two combinational networks with the same interface
/// compute the same functions, by hash-consed BDD identity (complete — not
/// sampled). Inputs are matched by *position*, outputs by position.
///
/// Returns `Ok(None)` when equivalent, or `Ok(Some(index))` with the first
/// differing output position.
///
/// # Errors
///
/// Returns [`BddError::ArityMismatch`] if the interfaces differ in input or
/// output count, or [`BddError::NodeLimit`] on blow-up.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use domino_bdd::circuit::check_equivalence;
/// use domino_netlist::Network;
///
/// // DeMorgan: !(a·b) == !a + !b
/// let mut x = Network::new("x");
/// let a = x.add_input("a")?;
/// let b = x.add_input("b")?;
/// let ab = x.add_and([a, b])?;
/// let f = x.add_not(ab)?;
/// x.add_output("f", f)?;
///
/// let mut y = Network::new("y");
/// let a = y.add_input("a")?;
/// let b = y.add_input("b")?;
/// let na = y.add_not(a)?;
/// let nb = y.add_not(b)?;
/// let g = y.add_or([na, nb])?;
/// y.add_output("f", g)?;
///
/// assert_eq!(check_equivalence(&x, &y)?, None);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(a: &Network, b: &Network) -> Result<Option<usize>, BddError> {
    let sa = source_nodes(a);
    let sb = source_nodes(b);
    if sa.len() != sb.len() {
        return Err(BddError::ArityMismatch {
            expected: sa.len(),
            got: sb.len(),
        });
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(BddError::ArityMismatch {
            expected: a.outputs().len(),
            got: b.outputs().len(),
        });
    }
    // Build both networks in one shared manager: hash-consing makes
    // function equality pointer equality.
    let n = sa.len();
    let mut manager = BddManager::new(n);
    let build = |manager: &mut BddManager, net: &Network| -> Result<Vec<Bdd>, BddError> {
        let sources = source_nodes(net);
        let var_of: HashMap<NodeId, usize> =
            sources.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut funcs = vec![Bdd::FALSE; net.len()];
        for id in net.topo_order() {
            let node = net.node(id);
            let f = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => manager.var(var_of[&id])?,
                NodeKind::Constant(v) => manager.constant(v),
                NodeKind::Not => manager.not(funcs[node.fanins[0].index()])?,
                NodeKind::And => manager.and_many(node.fanins.iter().map(|f| funcs[f.index()]))?,
                NodeKind::Or => manager.or_many(node.fanins.iter().map(|f| funcs[f.index()]))?,
            };
            funcs[id.index()] = f;
        }
        Ok(net
            .outputs()
            .iter()
            .map(|o| funcs[o.driver.index()])
            .collect())
    };
    let outs_a = build(&mut manager, a)?;
    let outs_b = build(&mut manager, b)?;
    Ok(outs_a.iter().zip(&outs_b).position(|(x, y)| x != y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Network, NodeId, NodeId) {
        // f = (a+b)·!c, g = a+b
        let mut net = Network::new("x");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_or([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_and([ab, nc]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", ab).unwrap();
        (net, f, ab)
    }

    #[test]
    fn bdds_match_network_evaluation() {
        let (net, _, _) = example();
        let bdds = CircuitBdds::build(&net).unwrap();
        let outs = bdds.output_bdds(&net);
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            let expect = net.eval_comb(&vals).unwrap();
            for (o, &bdd) in outs.iter().enumerate() {
                assert_eq!(
                    bdds.manager().eval(bdd, &vals).unwrap(),
                    expect[o],
                    "output {o} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn probabilities_exact() {
        let (net, f, ab) = example();
        let bdds = CircuitBdds::build(&net).unwrap();
        let p = bdds.node_probabilities(&net, &[0.5, 0.5, 0.5]).unwrap();
        // P[a+b] = 0.75, P[(a+b)·!c] = 0.375
        assert!((p[ab.index()] - 0.75).abs() < 1e-12);
        assert!((p[f.index()] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn latch_outputs_are_variables() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let g = net.add_and([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        let bdds = CircuitBdds::build(&net).unwrap();
        // Sources: a (var 0), q (var 1); P[g] = P[a]·P[q].
        let p = bdds.node_probabilities(&net, &[0.5, 0.25]).unwrap();
        assert!((p[g.index()] - 0.125).abs() < 1e-12);
        assert_eq!(source_nodes(&net), vec![a, q]);
    }

    #[test]
    fn explicit_order_changes_nothing_functionally() {
        let (net, _, _) = example();
        let b1 = CircuitBdds::build_with_order(&net, vec![0, 1, 2]).unwrap();
        let b2 = CircuitBdds::build_with_order(&net, vec![2, 1, 0]).unwrap();
        let p1 = b1.node_probabilities(&net, &[0.3, 0.6, 0.9]).unwrap();
        let p2 = b2.node_probabilities(&net, &[0.3, 0.6, 0.9]).unwrap();
        for (x, y) in p1.iter().zip(&p2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    /// The disjoint-pairs circuit f = Σ aᵢ·bᵢ with a's and b's split
    /// across the declaration order — exponential under the identity
    /// order, linear once the pairs interleave.
    fn pairs_net(k: usize) -> Network {
        let mut net = Network::new("pairs");
        let a: Vec<NodeId> = (0..k)
            .map(|i| net.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NodeId> = (0..k)
            .map(|i| net.add_input(format!("b{i}")).unwrap())
            .collect();
        let products: Vec<NodeId> = (0..k).map(|i| net.add_and([a[i], b[i]]).unwrap()).collect();
        let f = net.add_or(products).unwrap();
        net.add_output("f", f).unwrap();
        net
    }

    #[test]
    fn reorder_off_is_identical_to_plain_build() {
        let (net, _, _) = example();
        let plain = CircuitBdds::build(&net).unwrap();
        let (off, outcome) = CircuitBdds::build_reordered(
            &net,
            crate::ordering::paper_order(&net),
            &ReorderConfig::default(),
        )
        .unwrap();
        assert!(outcome.is_none());
        assert_eq!(plain.manager.stats(), off.manager.stats());
        assert_eq!(plain.node_funcs, off.node_funcs);
    }

    #[test]
    fn sift_mode_shrinks_and_preserves_probabilities() {
        let net = pairs_net(6);
        let order: Vec<usize> = (0..12).collect();
        let plain = CircuitBdds::build_with_order(&net, order.clone()).unwrap();
        let cfg = ReorderConfig::with_mode(ReorderMode::Sift);
        let (sifted, outcome) = CircuitBdds::build_reordered(&net, order, &cfg).unwrap();
        let outcome = outcome.unwrap();
        assert_eq!(outcome.nodes_before, plain.total_node_count());
        assert_eq!(outcome.nodes_after, sifted.total_node_count());
        assert!(
            outcome.nodes_after * 2 <= outcome.nodes_before,
            "sift barely helped: {} -> {}",
            outcome.nodes_before,
            outcome.nodes_after
        );
        assert_eq!(outcome.final_order, sifted.manager.order());
        // Compacted: the arena holds exactly the live nodes + terminals.
        assert_eq!(sifted.manager.stats().nodes, outcome.nodes_after + 2);
        // Semantics: probabilities match the unreordered build exactly in
        // value (bit patterns may differ — summation order changed).
        let probs = vec![0.3; 12];
        let p0 = plain.node_probabilities(&net, &probs).unwrap();
        let p1 = sifted.node_probabilities(&net, &probs).unwrap();
        for (i, (x, y)) in p0.iter().zip(&p1).enumerate() {
            assert!((x - y).abs() < 1e-12, "node {i}: {x} vs {y}");
        }
    }

    #[test]
    fn auto_mode_triggers_on_the_node_ladder() {
        let net = pairs_net(7);
        let order: Vec<usize> = (0..14).collect();
        let mut cfg = ReorderConfig::with_mode(ReorderMode::Auto);
        cfg.auto_trigger_nodes = 32; // tiny, so the ladder fires mid-build
        let (bdds, outcome) = CircuitBdds::build_reordered(&net, order.clone(), &cfg).unwrap();
        let outcome = outcome.unwrap();
        assert!(outcome.swaps > 0, "auto never fired with a tiny trigger");
        let plain = CircuitBdds::build_with_order(&net, order).unwrap();
        assert!(bdds.total_node_count() < plain.total_node_count());
        // Determinism: the same build reorders identically.
        let (bdds2, outcome2) =
            CircuitBdds::build_reordered(&net, (0..14).collect(), &cfg).unwrap();
        assert_eq!(outcome, outcome2.unwrap());
        assert_eq!(bdds.bdd_digest(), bdds2.bdd_digest());
    }

    #[test]
    fn sifted_manager_matches_fresh_build_under_final_order() {
        let net = pairs_net(5);
        let cfg = ReorderConfig::with_mode(ReorderMode::Sift);
        let (sifted, outcome) =
            CircuitBdds::build_reordered(&net, (0..10).collect(), &cfg).unwrap();
        let outcome = outcome.unwrap();
        let fresh = CircuitBdds::build_with_order(&net, outcome.final_order).unwrap();
        assert_eq!(sifted.total_node_count(), fresh.total_node_count());
        assert_eq!(sifted.bdd_digest(), fresh.bdd_digest());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything_observable() {
        let net = pairs_net(5);
        let cfg = ReorderConfig::with_mode(ReorderMode::Sift);
        let (bdds, outcome) = CircuitBdds::build_reordered(&net, (0..10).collect(), &cfg).unwrap();
        let outcome = outcome.unwrap();
        let mut text = String::new();
        bdds.serialize_into(&mut text);
        let loaded = CircuitBdds::deserialize_from(&text).unwrap();
        // Post-sift order survives the roundtrip.
        assert_eq!(loaded.manager().order(), outcome.final_order);
        assert_eq!(loaded.bdd_digest(), bdds.bdd_digest());
        assert_eq!(loaded.func_count(), net.len());
        assert_eq!(loaded.total_node_count(), bdds.total_node_count());
        // Probabilities are bit-identical: same shapes, same summation
        // order.
        let probs = vec![0.3; 10];
        let p0 = bdds.node_probabilities(&net, &probs).unwrap();
        let p1 = loaded.node_probabilities(&net, &probs).unwrap();
        assert_eq!(
            p0.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            p1.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn remap_compact_keeps_digest_and_probability_bits() {
        let net = pairs_net(4);
        let mut bdds = CircuitBdds::build(&net).unwrap();
        let digest = bdds.bdd_digest();
        let probs = vec![0.7; 8];
        let p0 = bdds.node_probabilities(&net, &probs).unwrap();
        bdds.remap_compact();
        assert_eq!(bdds.bdd_digest(), digest);
        let p1 = bdds.node_probabilities(&net, &probs).unwrap();
        assert_eq!(
            p0.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            p1.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        // Idempotent: already in postorder layout.
        let mut before = String::new();
        bdds.serialize_into(&mut before);
        bdds.remap_compact();
        let mut after = String::new();
        bdds.serialize_into(&mut after);
        assert_eq!(before, after);
    }

    #[test]
    fn wrong_order_length_rejected() {
        let (net, _, _) = example();
        assert!(matches!(
            CircuitBdds::build_with_order(&net, vec![0, 1]),
            Err(BddError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn equivalence_detects_differences() {
        let mut x = Network::new("x");
        let a = x.add_input("a").unwrap();
        let b = x.add_input("b").unwrap();
        let f = x.add_and([a, b]).unwrap();
        x.add_output("f", f).unwrap();

        let mut y = Network::new("y");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let f = y.add_or([a, b]).unwrap();
        y.add_output("f", f).unwrap();

        assert_eq!(check_equivalence(&x, &x).unwrap(), None);
        assert_eq!(check_equivalence(&x, &y).unwrap(), Some(0));
    }

    #[test]
    fn equivalence_interface_mismatch_rejected() {
        let mut x = Network::new("x");
        let a = x.add_input("a").unwrap();
        x.add_output("f", a).unwrap();
        let mut y = Network::new("y");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let f = y.add_and([a, b]).unwrap();
        y.add_output("f", f).unwrap();
        assert!(check_equivalence(&x, &y).is_err());
    }
}
