//! Building BDDs for every node of a Boolean network.
//!
//! The BDD *variables* of a network are its combinational sources: primary
//! inputs first, then latch outputs (a latch output is a free variable of the
//! combinational block it feeds — the sequential partitioning in
//! `domino-sgraph` decides what probability it carries). The variable index
//! of the `i`-th source is `i`; see [`source_nodes`].

use std::collections::HashMap;

use domino_netlist::{Network, NodeId, NodeKind};

use crate::manager::{Bdd, BddError, BddManager};
use crate::ordering;

/// The combinational source nodes of `net` in variable-index order: primary
/// inputs in declaration order, then latches in declaration order.
pub fn source_nodes(net: &Network) -> Vec<NodeId> {
    net.inputs()
        .iter()
        .chain(net.latches().iter())
        .copied()
        .collect()
}

/// BDDs for every node of a network, sharing one [`BddManager`].
///
/// # Example
///
/// ```
/// use domino_bdd::circuit::CircuitBdds;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("c");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_and([a, b])?;
/// net.add_output("f", g)?;
///
/// let bdds = CircuitBdds::build(&net)?;
/// let p = bdds.node_probabilities(&net, &[0.9, 0.9])?;
/// assert!((p[g.index()] - 0.81).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBdds {
    manager: BddManager,
    node_funcs: Vec<Bdd>,
}

impl CircuitBdds {
    /// Builds BDDs for all nodes using the paper's §4.2.2 variable ordering
    /// heuristic ([`ordering::paper_order`]).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if construction blows up.
    pub fn build(net: &Network) -> Result<Self, BddError> {
        Self::build_with_order(net, ordering::paper_order(net))
    }

    /// Builds BDDs for all nodes with an explicit variable order:
    /// `order[l]` is the source-variable index placed at BDD level `l`
    /// (level 0 is root-most).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `order` is not a permutation
    /// of the source indices, or [`BddError::NodeLimit`] on blow-up.
    pub fn build_with_order(net: &Network, order: Vec<usize>) -> Result<Self, BddError> {
        let sources = source_nodes(net);
        if order.len() != sources.len() {
            return Err(BddError::ArityMismatch {
                expected: sources.len(),
                got: order.len(),
            });
        }
        let mut manager = BddManager::with_order(order)?;
        // Shared BDDs for block-sized control logic land near the gate
        // count; pre-sizing the kernel tables avoids mid-build rehashes.
        manager.reserve(net.len());
        let var_of: HashMap<NodeId, usize> =
            sources.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut node_funcs = vec![Bdd::FALSE; net.len()];
        for id in net.topo_order() {
            let node = net.node(id);
            let f = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => manager.var(var_of[&id])?,
                NodeKind::Constant(v) => manager.constant(v),
                NodeKind::Not => {
                    let x = node_funcs[node.fanins[0].index()];
                    manager.not(x)?
                }
                // Feed fanin functions straight from the arena — no
                // per-gate temporary Vec on the construction hot path.
                NodeKind::And => {
                    manager.and_many(node.fanins.iter().map(|f| node_funcs[f.index()]))?
                }
                NodeKind::Or => {
                    manager.or_many(node.fanins.iter().map(|f| node_funcs[f.index()]))?
                }
            };
            node_funcs[id.index()] = f;
        }
        Ok(CircuitBdds {
            manager,
            node_funcs,
        })
    }

    /// The underlying manager.
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// BDD of a node.
    pub fn node_bdd(&self, id: NodeId) -> Bdd {
        self.node_funcs[id.index()]
    }

    /// BDDs of the primary outputs, in declaration order.
    pub fn output_bdds(&self, net: &Network) -> Vec<Bdd> {
        net.outputs()
            .iter()
            .map(|o| self.node_funcs[o.driver.index()])
            .collect()
    }

    /// Shared node count over the primary-output BDDs — the Figure 10
    /// metric.
    pub fn output_node_count(&self, net: &Network) -> usize {
        self.manager.node_count(&self.output_bdds(net))
    }

    /// Shared node count over *all* circuit node BDDs.
    pub fn total_node_count(&self) -> usize {
        self.manager.node_count(&self.node_funcs)
    }

    /// Exact signal probability of every node (indexed by node arena index),
    /// given per-source probabilities in source order (PIs then latches; see
    /// [`source_nodes`]).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::ArityMismatch`] /
    /// [`BddError::InvalidProbability`] for bad probability vectors.
    pub fn node_probabilities(
        &self,
        net: &Network,
        source_probs: &[f64],
    ) -> Result<Vec<f64>, BddError> {
        let _ = net;
        self.manager
            .signal_probabilities(&self.node_funcs, source_probs)
    }

    /// [`CircuitBdds::node_probabilities`] writing into a caller-owned
    /// buffer (cleared first), so sweep loops reuse one allocation across
    /// evaluations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBdds::node_probabilities`].
    pub fn node_probabilities_into(
        &self,
        net: &Network,
        source_probs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), BddError> {
        let _ = net;
        self.manager
            .signal_probabilities_into(&self.node_funcs, source_probs, out)
    }
}

/// Formally checks that two combinational networks with the same interface
/// compute the same functions, by hash-consed BDD identity (complete — not
/// sampled). Inputs are matched by *position*, outputs by position.
///
/// Returns `Ok(None)` when equivalent, or `Ok(Some(index))` with the first
/// differing output position.
///
/// # Errors
///
/// Returns [`BddError::ArityMismatch`] if the interfaces differ in input or
/// output count, or [`BddError::NodeLimit`] on blow-up.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use domino_bdd::circuit::check_equivalence;
/// use domino_netlist::Network;
///
/// // DeMorgan: !(a·b) == !a + !b
/// let mut x = Network::new("x");
/// let a = x.add_input("a")?;
/// let b = x.add_input("b")?;
/// let ab = x.add_and([a, b])?;
/// let f = x.add_not(ab)?;
/// x.add_output("f", f)?;
///
/// let mut y = Network::new("y");
/// let a = y.add_input("a")?;
/// let b = y.add_input("b")?;
/// let na = y.add_not(a)?;
/// let nb = y.add_not(b)?;
/// let g = y.add_or([na, nb])?;
/// y.add_output("f", g)?;
///
/// assert_eq!(check_equivalence(&x, &y)?, None);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(a: &Network, b: &Network) -> Result<Option<usize>, BddError> {
    let sa = source_nodes(a);
    let sb = source_nodes(b);
    if sa.len() != sb.len() {
        return Err(BddError::ArityMismatch {
            expected: sa.len(),
            got: sb.len(),
        });
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(BddError::ArityMismatch {
            expected: a.outputs().len(),
            got: b.outputs().len(),
        });
    }
    // Build both networks in one shared manager: hash-consing makes
    // function equality pointer equality.
    let n = sa.len();
    let mut manager = BddManager::new(n);
    let build = |manager: &mut BddManager, net: &Network| -> Result<Vec<Bdd>, BddError> {
        let sources = source_nodes(net);
        let var_of: HashMap<NodeId, usize> =
            sources.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut funcs = vec![Bdd::FALSE; net.len()];
        for id in net.topo_order() {
            let node = net.node(id);
            let f = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => manager.var(var_of[&id])?,
                NodeKind::Constant(v) => manager.constant(v),
                NodeKind::Not => manager.not(funcs[node.fanins[0].index()])?,
                NodeKind::And => manager.and_many(node.fanins.iter().map(|f| funcs[f.index()]))?,
                NodeKind::Or => manager.or_many(node.fanins.iter().map(|f| funcs[f.index()]))?,
            };
            funcs[id.index()] = f;
        }
        Ok(net
            .outputs()
            .iter()
            .map(|o| funcs[o.driver.index()])
            .collect())
    };
    let outs_a = build(&mut manager, a)?;
    let outs_b = build(&mut manager, b)?;
    Ok(outs_a.iter().zip(&outs_b).position(|(x, y)| x != y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Network, NodeId, NodeId) {
        // f = (a+b)·!c, g = a+b
        let mut net = Network::new("x");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_or([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_and([ab, nc]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", ab).unwrap();
        (net, f, ab)
    }

    #[test]
    fn bdds_match_network_evaluation() {
        let (net, _, _) = example();
        let bdds = CircuitBdds::build(&net).unwrap();
        let outs = bdds.output_bdds(&net);
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            let expect = net.eval_comb(&vals).unwrap();
            for (o, &bdd) in outs.iter().enumerate() {
                assert_eq!(
                    bdds.manager().eval(bdd, &vals).unwrap(),
                    expect[o],
                    "output {o} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn probabilities_exact() {
        let (net, f, ab) = example();
        let bdds = CircuitBdds::build(&net).unwrap();
        let p = bdds.node_probabilities(&net, &[0.5, 0.5, 0.5]).unwrap();
        // P[a+b] = 0.75, P[(a+b)·!c] = 0.375
        assert!((p[ab.index()] - 0.75).abs() < 1e-12);
        assert!((p[f.index()] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn latch_outputs_are_variables() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let g = net.add_and([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        let bdds = CircuitBdds::build(&net).unwrap();
        // Sources: a (var 0), q (var 1); P[g] = P[a]·P[q].
        let p = bdds.node_probabilities(&net, &[0.5, 0.25]).unwrap();
        assert!((p[g.index()] - 0.125).abs() < 1e-12);
        assert_eq!(source_nodes(&net), vec![a, q]);
    }

    #[test]
    fn explicit_order_changes_nothing_functionally() {
        let (net, _, _) = example();
        let b1 = CircuitBdds::build_with_order(&net, vec![0, 1, 2]).unwrap();
        let b2 = CircuitBdds::build_with_order(&net, vec![2, 1, 0]).unwrap();
        let p1 = b1.node_probabilities(&net, &[0.3, 0.6, 0.9]).unwrap();
        let p2 = b2.node_probabilities(&net, &[0.3, 0.6, 0.9]).unwrap();
        for (x, y) in p1.iter().zip(&p2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_order_length_rejected() {
        let (net, _, _) = example();
        assert!(matches!(
            CircuitBdds::build_with_order(&net, vec![0, 1]),
            Err(BddError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn equivalence_detects_differences() {
        let mut x = Network::new("x");
        let a = x.add_input("a").unwrap();
        let b = x.add_input("b").unwrap();
        let f = x.add_and([a, b]).unwrap();
        x.add_output("f", f).unwrap();

        let mut y = Network::new("y");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let f = y.add_or([a, b]).unwrap();
        y.add_output("f", f).unwrap();

        assert_eq!(check_equivalence(&x, &x).unwrap(), None);
        assert_eq!(check_equivalence(&x, &y).unwrap(), Some(0));
    }

    #[test]
    fn equivalence_interface_mismatch_rejected() {
        let mut x = Network::new("x");
        let a = x.add_input("a").unwrap();
        x.add_output("f", a).unwrap();
        let mut y = Network::new("y");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let f = y.add_and([a, b]).unwrap();
        y.add_output("f", f).unwrap();
        assert!(check_equivalence(&x, &y).is_err());
    }
}
