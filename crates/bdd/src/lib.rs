//! Reduced ordered binary decision diagrams (ROBDDs) with exact signal
//! probability computation.
//!
//! This crate is the probability engine of the `dominolp` workspace: the
//! paper (§4.2) computes the signal probability of every circuit node with
//! BDDs, and controls BDD size with a circuit-driven variable ordering
//! heuristic (§4.2.2) implemented in [`ordering`].
//!
//! Contents:
//!
//! * [`BddManager`] — arena-based ROBDD store with hash-consing, apply
//!   caches, `and`/`or`/`xor`/`not`/`ite`, evaluation, SAT counting,
//!   support, and shared node counting;
//! * [`BddManager::signal_probability`] — exact `P[f = 1]` for independent
//!   input probabilities, linear in BDD size;
//! * [`circuit`] — builds BDDs for every node of a
//!   [`Network`](domino_netlist::Network);
//! * [`ordering`] — the paper's reverse-topological, fanout-cone-weighted
//!   variable ordering plus baseline orders for the Figure 10 comparison;
//! * [`dvo`] — dynamic variable reordering: in-place adjacent level swaps
//!   and Rudell-style sifting with deterministic fixed-trigger schedules.
//!
//! # Example
//!
//! ```
//! use domino_bdd::BddManager;
//!
//! # fn main() -> Result<(), domino_bdd::BddError> {
//! let mut m = BddManager::new(2);
//! let a = m.var(0)?;
//! let b = m.var(1)?;
//! let f = m.and(a, b)?;
//! // P[a·b = 1] with P[a]=0.9, P[b]=0.9
//! let p = m.signal_probability(f, &[0.9, 0.9])?;
//! assert!((p - 0.81).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod circuit;
pub mod dvo;
pub mod fx;
mod manager;
pub mod ordering;
pub mod snapshot;
mod swap;
pub mod table;

pub use dvo::{ReorderConfig, ReorderMode, ReorderOutcome};
pub use manager::{Bdd, BddError, BddManager, BddStats};
pub use snapshot::{SnapshotError, BDD_SNAPSHOT_HEADER};
