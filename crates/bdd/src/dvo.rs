//! Dynamic variable ordering: Rudell-style sifting built on the adjacent
//! level swap (`crate::swap`), with deterministic fixed-trigger
//! schedules.
//!
//! # Determinism contract
//!
//! Reordering is **result-affecting** (it changes BDD shapes, and with
//! them the structure-canonical floating-point summation order of signal
//! probabilities), so everything here is a pure function of the manager
//! state and the configuration:
//!
//! * the sifting agenda, swap sequence and abort decisions depend only on
//!   node counts — never on wall-clock time, thread counts or allocation
//!   addresses;
//! * the size metric is the exact shared node count reachable from the
//!   caller's roots ([`BddManager::node_count`]), recomputed after every
//!   swap;
//! * the `auto` schedule triggers on arena-size thresholds (a doubling
//!   ladder), which grow deterministically during construction.
//!
//! The same circuit at the same [`ReorderMode`] therefore reorders
//! identically on every run, every thread count and every shard count.

use std::fmt;
use std::str::FromStr;

use crate::manager::{Bdd, BddError, BddManager};
use crate::swap::{collect_levels, swap_adjacent, LevelLists};

/// When (and whether) dynamic variable reordering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReorderMode {
    /// Never reorder: today's static-order behavior, bit-for-bit.
    #[default]
    Off,
    /// Sift when construction crosses fixed arena-size thresholds
    /// (deterministic doubling ladder starting at
    /// [`ReorderConfig::auto_trigger_nodes`]), and once more after the
    /// build when any trigger fired.
    Auto,
    /// One unconditional sifting pass after construction.
    Sift,
}

impl ReorderMode {
    /// The CLI/JSON spelling (`off` / `auto` / `sift`).
    pub fn as_str(self) -> &'static str {
        match self {
            ReorderMode::Off => "off",
            ReorderMode::Auto => "auto",
            ReorderMode::Sift => "sift",
        }
    }
}

impl fmt::Display for ReorderMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ReorderMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ReorderMode::Off),
            "auto" => Ok(ReorderMode::Auto),
            "sift" => Ok(ReorderMode::Sift),
            other => Err(format!(
                "unknown reorder mode '{other}' (expected off, auto or sift)"
            )),
        }
    }
}

/// Tuning knobs for dynamic reordering. Every field is result-affecting
/// and participates in the engine cache key when the mode is not `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderConfig {
    /// Schedule: `Off` (default), `Auto` or `Sift`.
    pub mode: ReorderMode,
    /// A sift direction aborts once the working size exceeds the best
    /// size seen for the variable by this percentage (Rudell's
    /// max-growth bound).
    pub max_growth_pct: u32,
    /// `Auto` triggers its first mid-build sift when the arena reaches
    /// this many nodes; later triggers double from there.
    pub auto_trigger_nodes: usize,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig {
            mode: ReorderMode::Off,
            max_growth_pct: 20,
            auto_trigger_nodes: 2048,
        }
    }
}

impl ReorderConfig {
    /// A config with the given mode and default bounds.
    pub fn with_mode(mode: ReorderMode) -> Self {
        ReorderConfig {
            mode,
            ..ReorderConfig::default()
        }
    }
}

/// What a reorder campaign did, recorded into kernel stats and flow JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReorderOutcome {
    /// Adjacent-level swaps performed (including settle-back moves).
    pub swaps: u64,
    /// Sifting passes over the full variable agenda.
    pub sift_rounds: u32,
    /// Shared reachable node count before the first sift (equals
    /// `nodes_after` when nothing triggered).
    pub nodes_before: usize,
    /// Shared reachable node count after the last sift.
    pub nodes_after: usize,
    /// The final variable order: element `l` is the variable at level `l`.
    pub final_order: Vec<usize>,
}

impl ReorderOutcome {
    /// Merges a later sift's statistics into an accumulated outcome
    /// (`auto` mode can sift several times during one build).
    pub(crate) fn absorb(&mut self, later: &ReorderOutcome) {
        if self.sift_rounds == 0 && self.swaps == 0 {
            self.nodes_before = later.nodes_before;
        }
        self.swaps += later.swaps;
        self.sift_rounds += later.sift_rounds;
        self.nodes_after = later.nodes_after;
        self.final_order = later.final_order.clone();
    }
}

/// Sifting passes stop after this many rounds even if still improving —
/// a fixed bound so the schedule is a pure function of the inputs.
const MAX_SIFT_ROUNDS: u32 = 3;

/// Runs sifting passes until a pass stops shrinking the shared node count
/// over `roots` (bounded by `MAX_SIFT_ROUNDS`). Each variable is sifted
/// through every level — down to the bottom, up to the top — under the
/// max-growth abort, then settled at its best level; ties keep the level
/// closest to the search path's earliest visit, deterministically.
///
/// Handles stay valid: callers keep using their [`Bdd`]s afterwards. The
/// arena accumulates dead nodes; run [`BddManager::compact`] when the
/// campaign is over.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if a swap exhausts the arena limit
/// (the manager is poisoned in that case).
pub fn sift(
    m: &mut BddManager,
    roots: &[Bdd],
    max_growth_pct: u32,
) -> Result<ReorderOutcome, BddError> {
    let n = m.n_vars();
    let mut outcome = ReorderOutcome {
        nodes_before: m.node_count(roots),
        ..ReorderOutcome::default()
    };
    outcome.nodes_after = outcome.nodes_before;
    outcome.final_order = m.order();
    if n < 2 {
        return Ok(outcome);
    }
    let mut lists = collect_levels(m);
    let mut size = outcome.nodes_before;
    loop {
        outcome.sift_rounds += 1;
        let round_start = size;
        // Agenda: variables by level population at round start, largest
        // first (they have the most to give), ties by variable index.
        let population: Vec<usize> = (0..n)
            .map(|v| lists[m.level_of_var[v] as usize].len())
            .collect();
        let mut agenda: Vec<usize> = (0..n).collect();
        agenda.sort_by(|&a, &b| population[b].cmp(&population[a]).then(a.cmp(&b)));
        for v in agenda {
            size = sift_one(m, v, roots, &mut lists, size, max_growth_pct, &mut outcome)?;
        }
        if size >= round_start || outcome.sift_rounds >= MAX_SIFT_ROUNDS {
            break;
        }
    }
    outcome.nodes_after = size;
    outcome.final_order = m.order();
    Ok(outcome)
}

/// Sifts one variable to its best level; returns the resulting size.
#[allow(clippy::too_many_arguments)]
fn sift_one(
    m: &mut BddManager,
    var: usize,
    roots: &[Bdd],
    lists: &mut LevelLists,
    mut size: usize,
    max_growth_pct: u32,
    outcome: &mut ReorderOutcome,
) -> Result<usize, BddError> {
    let n = m.n_vars();
    let mut level = m.level_of_var[var] as usize;
    let mut best_size = size;
    let mut best_level = level;
    let limit = |best: usize| best.saturating_mul(100 + max_growth_pct as usize) / 100;
    // Down to the bottom.
    while level + 1 < n {
        swap_adjacent(m, level, lists)?;
        outcome.swaps += 1;
        level += 1;
        size = m.node_count(roots);
        if size < best_size {
            best_size = size;
            best_level = level;
        } else if size > limit(best_size) {
            break;
        }
    }
    // Back up to the top.
    while level > 0 {
        swap_adjacent(m, level - 1, lists)?;
        outcome.swaps += 1;
        level -= 1;
        size = m.node_count(roots);
        if size < best_size {
            best_size = size;
            best_level = level;
        } else if size > limit(best_size) {
            break;
        }
    }
    // Settle at the best level seen. The size under a given order is
    // canonical, so arriving back at `best_level` restores `best_size`.
    while level < best_level {
        swap_adjacent(m, level, lists)?;
        outcome.swaps += 1;
        level += 1;
    }
    while level > best_level {
        swap_adjacent(m, level - 1, lists)?;
        outcome.swaps += 1;
        level -= 1;
    }
    size = m.node_count(roots);
    debug_assert_eq!(size, best_size, "size not canonical under restored order");
    Ok(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sifting demo: f = a₀·b₀ + a₁·b₁ + ... with the pairs
    /// split across the order (a's first, then b's) — exponential under
    /// the start order, linear once the pairs are adjacent.
    fn pairs_function(m: &mut BddManager, k: usize) -> Bdd {
        let mut f = Bdd::FALSE;
        for i in 0..k {
            let a = m.var(i).unwrap();
            let b = m.var(k + i).unwrap();
            let ab = m.and(a, b).unwrap();
            f = m.or(f, ab).unwrap();
        }
        f
    }

    #[test]
    fn sifting_shrinks_the_pairs_function() {
        let mut m = BddManager::new(12);
        let f = pairs_function(&mut m, 6);
        let before = m.node_count(&[f]);
        let outcome = sift(&mut m, &[f], 20).unwrap();
        assert_eq!(outcome.nodes_before, before);
        let after = m.node_count(&[f]);
        assert_eq!(outcome.nodes_after, after);
        // Optimal interleaved order needs 2k nodes; the split order needs
        // ~3·2^(k-1). Sifting must find (near-)linear size.
        assert!(
            after * 4 <= before,
            "sifting only got {before} -> {after} nodes"
        );
        assert!(outcome.swaps > 0);
        assert_eq!(outcome.final_order, m.order());
    }

    #[test]
    fn sifting_preserves_semantics() {
        let mut m = BddManager::new(8);
        let f = pairs_function(&mut m, 4);
        let truth: Vec<bool> = (0..256u32)
            .map(|bits| {
                let vals: Vec<bool> = (0..8).map(|i| bits & (1 << i) != 0).collect();
                m.eval(f, &vals).unwrap()
            })
            .collect();
        sift(&mut m, &[f], 20).unwrap();
        for (bits, &expect) in truth.iter().enumerate() {
            let vals: Vec<bool> = (0..8).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(f, &vals).unwrap(), expect, "assignment {bits}");
        }
    }

    #[test]
    fn sifting_is_deterministic() {
        let run = || {
            let mut m = BddManager::new(10);
            let f = pairs_function(&mut m, 5);
            let outcome = sift(&mut m, &[f], 20).unwrap();
            (outcome, m.order(), m.digest(&[f]))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn compaction_after_sifting_leaves_only_live_nodes() {
        let mut m = BddManager::new(10);
        let f = pairs_function(&mut m, 5);
        sift(&mut m, &[f], 20).unwrap();
        let live = m.node_count(&[f]);
        let digest = m.digest(&[f]);
        let roots = m.compact(&[f]);
        assert_eq!(m.stats().nodes, live + 2, "arena not fully compacted");
        assert_eq!(m.digest(&roots), digest, "compaction changed the graph");
        assert_eq!(m.node_count(&roots), live);
    }

    #[test]
    fn trivial_managers_sift_to_nothing() {
        let mut m = BddManager::new(1);
        let a = m.var(0).unwrap();
        let outcome = sift(&mut m, &[a], 20).unwrap();
        assert_eq!(outcome.swaps, 0);
        assert_eq!(outcome.nodes_before, outcome.nodes_after);
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [ReorderMode::Off, ReorderMode::Auto, ReorderMode::Sift] {
            assert_eq!(mode.as_str().parse::<ReorderMode>().unwrap(), mode);
        }
        assert!("fast".parse::<ReorderMode>().is_err());
        assert_eq!(ReorderMode::default(), ReorderMode::Off);
    }
}
