//! The ROBDD manager: hash-consed node arena, boolean operations, and
//! analyses (evaluation, SAT count, support, node count, signal
//! probability).
//!
//! # Kernel data structures
//!
//! Every number the workspace produces — signal probabilities, `Σ S·C·P`
//! power estimates, the pairwise phase search — bottoms out here, so the
//! manager is built around dense, allocation-free structures rather than
//! `std` hash maps:
//!
//! * hash-consing goes through an open-addressed [`UniqueTable`] and the
//!   binary-op/NOT memo through a direct-mapped [`OpCache`], both hashed
//!   with the Fx mix from [`crate::fx`] (see [`crate::table`]);
//! * the `&self` analyses ([`BddManager::signal_probability`],
//!   [`BddManager::sat_count`], [`BddManager::support`],
//!   [`BddManager::node_count`]) memoize into stamp-versioned `Vec` arenas
//!   indexed by the `u32` node handle, reused across calls through a
//!   [`RefCell`] — repeated evaluations allocate nothing;
//! * results are bit-identical to the `HashMap` implementation they
//!   replaced: node handles, traversal order and floating-point summation
//!   order are unchanged (pinned by the golden-equivalence tests).

use std::cell::RefCell;
use std::error::Error;
use std::fmt;

use crate::table::{OpCache, UniqueTable};

/// Handle to a BDD root inside a [`BddManager`].
///
/// `Bdd`s are only meaningful for the manager that created them. The two
/// terminals are [`Bdd::FALSE`] and [`Bdd::TRUE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false terminal.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true terminal.
    pub const TRUE: Bdd = Bdd(1);

    /// `true` if this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// `true` if this is the constant-true terminal.
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// `true` if this is the constant-false terminal.
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn from_raw(raw: u32) -> Bdd {
        Bdd(raw)
    }
}

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BddError {
    /// A variable index was out of range for this manager.
    UnknownVariable {
        /// The offending variable index.
        var: usize,
        /// Number of variables in the manager.
        n_vars: usize,
    },
    /// The node arena exceeded the configured limit (BDD blow-up guard).
    NodeLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A probability/assignment slice had the wrong length.
    ArityMismatch {
        /// Expected length (number of variables).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A supplied probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Variable whose probability is invalid.
        var: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::UnknownVariable { var, n_vars } => {
                write!(
                    f,
                    "variable {var} out of range for manager with {n_vars} variables"
                )
            }
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} nodes exceeded")
            }
            BddError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} per-variable values, got {got}")
            }
            BddError::InvalidProbability { var, value } => {
                write!(f, "probability {value} for variable {var} is not in [0, 1]")
            }
        }
    }
}

impl Error for BddError {}

/// Internal node: decision on the variable at `level`, children `lo`/`hi`.
/// Crate-visible so the level-swap machinery ([`crate::swap`]) can rewrite
/// nodes in place.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) lo: Bdd,
    pub(crate) hi: Bdd,
}

pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Size/occupancy/traffic statistics of a manager, from
/// [`BddManager::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Live nodes in the arena, including the two terminals.
    pub nodes: usize,
    /// Number of variables.
    pub n_vars: usize,
    /// Live entries in the operation cache.
    pub cache_entries: usize,
    /// Unique-table lookups that found an existing node (hash-consing
    /// shares).
    pub unique_hits: u64,
    /// Unique-table lookups that interned a fresh node.
    pub unique_misses: u64,
    /// Operation-cache lookups (and/or/xor/not) answered from the cache.
    pub cache_hits: u64,
    /// Operation-cache lookups that had to recurse.
    pub cache_misses: u64,
}

impl BddStats {
    /// Unique-table hit fraction, or `None` before any lookups.
    pub fn unique_hit_rate(&self) -> Option<f64> {
        rate(self.unique_hits, self.unique_misses)
    }

    /// Operation-cache hit fraction, or `None` before any lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        rate(self.cache_hits, self.cache_misses)
    }
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinOp {
    And,
    Or,
    Xor,
}

impl BinOp {
    /// Nonzero [`OpCache`] tag.
    fn tag(self) -> u32 {
        match self {
            BinOp::And => 1,
            BinOp::Or => 2,
            BinOp::Xor => 3,
        }
    }
}

/// [`OpCache`] tag for negation (`b` operand unused).
const NOT_TAG: u32 = 4;

/// Stamp-versioned dense memo for the `&self` analyses: `value[i]` is valid
/// iff `stamp[i] == cur`. Bumping `cur` invalidates everything in O(1), so
/// repeated evaluations reuse the same allocations with no clearing pass.
#[derive(Debug, Clone, Default)]
struct EvalScratch {
    stamp: Vec<u32>,
    value: Vec<f64>,
    /// Visit stamps over *variables* (for support computation).
    var_stamp: Vec<u32>,
    /// Explicit DFS stack for the iterative traversals.
    stack: Vec<Bdd>,
    cur: u32,
}

impl EvalScratch {
    /// Starts a new evaluation over `n_nodes` nodes and `n_vars` variables.
    fn begin(&mut self, n_nodes: usize, n_vars: usize) {
        if self.cur == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.var_stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 1;
        } else {
            self.cur += 1;
        }
        if self.stamp.len() < n_nodes {
            self.stamp.resize(n_nodes, 0);
            self.value.resize(n_nodes, 0.0);
        }
        if self.var_stamp.len() < n_vars {
            self.var_stamp.resize(n_vars, 0);
        }
        self.stack.clear();
    }

    #[inline]
    fn get(&self, i: usize) -> Option<f64> {
        if self.stamp[i] == self.cur {
            Some(self.value[i])
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: f64) {
        self.stamp[i] = self.cur;
        self.value[i] = v;
    }

    /// First visit of node `i` this evaluation?
    #[inline]
    fn visit(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.cur {
            false
        } else {
            self.stamp[i] = self.cur;
            true
        }
    }

    /// First visit of variable `v` this evaluation?
    #[inline]
    fn visit_var(&mut self, v: usize) -> bool {
        if self.var_stamp[v] == self.cur {
            false
        } else {
            self.var_stamp[v] = self.cur;
            true
        }
    }
}

/// Stamp-versioned dense memo for [`BddManager::cofactor`] (`&mut self`, so
/// it lives outside the [`RefCell`] and is taken with `mem::take` while the
/// recursion also creates nodes).
#[derive(Debug, Clone, Default)]
struct CofScratch {
    stamp: Vec<u32>,
    value: Vec<u32>,
    cur: u32,
}

impl CofScratch {
    fn begin(&mut self, n_nodes: usize) {
        if self.cur == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 1;
        } else {
            self.cur += 1;
        }
        if self.stamp.len() < n_nodes {
            self.stamp.resize(n_nodes, 0);
            self.value.resize(n_nodes, 0);
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<Bdd> {
        if i < self.stamp.len() && self.stamp[i] == self.cur {
            Some(Bdd(self.value[i]))
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: Bdd) {
        if i < self.stamp.len() {
            self.stamp[i] = self.cur;
            self.value[i] = v.0;
        }
    }
}

/// An arena-based ROBDD manager with a fixed variable order.
///
/// Variables are external indices `0..n_vars`; the order in which they are
/// tested from root to terminals is fixed at construction
/// ([`BddManager::with_order`]) or defaults to `0, 1, 2, ...`
/// ([`BddManager::new`]). The manager hash-conses nodes, so structural
/// equality of functions is pointer equality of [`Bdd`] handles —
/// this is what makes node counting and equivalence checks O(1)/O(size).
///
/// There is no garbage collection: the target workloads (block-sized domino
/// control logic) comfortably fit; a configurable [node limit]
/// (`BddManager::set_node_limit`) guards against pathological blow-up.
#[derive(Debug, Clone)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTable,
    pub(crate) op_cache: OpCache,
    /// level_of_var[v] = position of variable v in the order (0 = root-most).
    pub(crate) level_of_var: Vec<u32>,
    /// var_at_level[l] = variable tested at level l.
    pub(crate) var_at_level: Vec<u32>,
    node_limit: usize,
    scratch: RefCell<EvalScratch>,
    cof_scratch: CofScratch,
}

impl BddManager {
    /// Creates a manager over `n_vars` variables with the identity order
    /// (variable 0 at the root).
    pub fn new(n_vars: usize) -> Self {
        Self::with_order((0..n_vars).collect()).expect("identity order is always a permutation")
    }

    /// Creates a manager whose variable order is the given permutation:
    /// `order[l]` is the variable tested at level `l` (level 0 is the
    /// root-most).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `order` is not a permutation
    /// of `0..order.len()`.
    pub fn with_order(order: Vec<usize>) -> Result<Self, BddError> {
        let n = order.len();
        let mut level_of_var = vec![u32::MAX; n];
        for (level, &var) in order.iter().enumerate() {
            if var >= n || level_of_var[var] != u32::MAX {
                return Err(BddError::UnknownVariable { var, n_vars: n });
            }
            level_of_var[var] = level as u32;
        }
        Ok(BddManager {
            nodes: vec![
                Node {
                    level: TERMINAL_LEVEL,
                    lo: Bdd::FALSE,
                    hi: Bdd::FALSE,
                },
                Node {
                    level: TERMINAL_LEVEL,
                    lo: Bdd::TRUE,
                    hi: Bdd::TRUE,
                },
            ],
            unique: UniqueTable::new(),
            op_cache: OpCache::new(),
            level_of_var,
            var_at_level: order.iter().map(|&v| v as u32).collect(),
            node_limit: 50_000_000,
            scratch: RefCell::new(EvalScratch::default()),
            cof_scratch: CofScratch::default(),
        })
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// The variable order: element `l` is the variable tested at level `l`.
    pub fn order(&self) -> Vec<usize> {
        self.var_at_level.iter().map(|&v| v as usize).collect()
    }

    /// Caps the node arena; operations that would exceed it return
    /// [`BddError::NodeLimit`].
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Pre-sizes the unique table and op cache for roughly
    /// `expected_nodes` arena nodes, avoiding rehash pauses during
    /// construction. Best called before building anything (the circuit
    /// builder sizes by the network's node count).
    pub fn reserve(&mut self, expected_nodes: usize) {
        self.nodes
            .reserve(expected_nodes.saturating_sub(self.nodes.len()));
        self.unique.reserve(expected_nodes);
        self.op_cache.reserve(expected_nodes * 2);
    }

    /// Current statistics (sizes plus unique-table/op-cache traffic).
    pub fn stats(&self) -> BddStats {
        let (unique_hits, unique_misses) = self.unique.counters();
        let (cache_hits, cache_misses) = self.op_cache.counters();
        BddStats {
            nodes: self.nodes.len(),
            n_vars: self.n_vars(),
            cache_entries: self.op_cache.len(),
            unique_hits,
            unique_misses,
            cache_hits,
            cache_misses,
        }
    }

    /// The constant BDD for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// The single-variable function `v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `var ≥ n_vars`.
    pub fn var(&mut self, var: usize) -> Result<Bdd, BddError> {
        if var >= self.n_vars() {
            return Err(BddError::UnknownVariable {
                var,
                n_vars: self.n_vars(),
            });
        }
        let level = self.level_of_var[var];
        self.mk(level, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated single-variable function `!v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] if `var ≥ n_vars`.
    pub fn nvar(&mut self, var: usize) -> Result<Bdd, BddError> {
        if var >= self.n_vars() {
            return Err(BddError::UnknownVariable {
                var,
                n_vars: self.n_vars(),
            });
        }
        let level = self.level_of_var[var];
        self.mk(level, Bdd::TRUE, Bdd::FALSE)
    }

    pub(crate) fn mk(&mut self, level: u32, lo: Bdd, hi: Bdd) -> Result<Bdd, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(b) = self.unique.get(level, lo.0, hi.0) {
            return Ok(Bdd(b));
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let b = Bdd(u32::try_from(self.nodes.len()).expect("bdd arena exceeds u32"));
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert(level, lo.0, hi.0, b.0);
        Ok(b)
    }

    fn level(&self, b: Bdd) -> u32 {
        self.nodes[b.index()].level
    }

    /// Conjunction `a · b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        self.binop(BinOp::And, a, b)
    }

    /// Disjunction `a + b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        self.binop(BinOp::Or, a, b)
    }

    /// Exclusive or `a ⊕ b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        self.binop(BinOp::Xor, a, b)
    }

    /// Conjunction over any number of operands (empty product = true).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn and_many(&mut self, operands: impl IntoIterator<Item = Bdd>) -> Result<Bdd, BddError> {
        let mut acc = Bdd::TRUE;
        for x in operands {
            acc = self.and(acc, x)?;
            if acc.is_false() {
                break;
            }
        }
        Ok(acc)
    }

    /// Disjunction over any number of operands (empty sum = false).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn or_many(&mut self, operands: impl IntoIterator<Item = Bdd>) -> Result<Bdd, BddError> {
        let mut acc = Bdd::FALSE;
        for x in operands {
            acc = self.or(acc, x)?;
            if acc.is_true() {
                break;
            }
        }
        Ok(acc)
    }

    fn binop(&mut self, op: BinOp, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        // Terminal cases.
        match op {
            BinOp::And => {
                if a.is_false() || b.is_false() {
                    return Ok(Bdd::FALSE);
                }
                if a.is_true() {
                    return Ok(b);
                }
                if b.is_true() || a == b {
                    return Ok(a);
                }
            }
            BinOp::Or => {
                if a.is_true() || b.is_true() {
                    return Ok(Bdd::TRUE);
                }
                if a.is_false() {
                    return Ok(b);
                }
                if b.is_false() || a == b {
                    return Ok(a);
                }
            }
            BinOp::Xor => {
                if a == b {
                    return Ok(Bdd::FALSE);
                }
                if a.is_false() {
                    return Ok(b);
                }
                if b.is_false() {
                    return Ok(a);
                }
                if a.is_true() {
                    return self.not(b);
                }
                if b.is_true() {
                    return self.not(a);
                }
            }
        }
        // Commutative: canonicalize operand order for the cache.
        let (ka, kb) = if a <= b { (a, b) } else { (b, a) };
        if let Some(r) = self.op_cache.get(op.tag(), ka.0, kb.0) {
            return Ok(Bdd(r));
        }
        let (la, lb) = (self.level(a), self.level(b));
        let level = la.min(lb);
        let (a_lo, a_hi) = if la == level {
            let n = self.nodes[a.index()];
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if lb == level {
            let n = self.nodes[b.index()];
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.binop(op, a_lo, b_lo)?;
        let hi = self.binop(op, a_hi, b_hi)?;
        let r = self.mk(level, lo, hi)?;
        self.op_cache.insert(op.tag(), ka.0, kb.0, r.0);
        self.op_cache.maybe_grow();
        Ok(r)
    }

    /// Negation `!a`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn not(&mut self, a: Bdd) -> Result<Bdd, BddError> {
        if a.is_true() {
            return Ok(Bdd::FALSE);
        }
        if a.is_false() {
            return Ok(Bdd::TRUE);
        }
        if let Some(r) = self.op_cache.get(NOT_TAG, a.0, 0) {
            return Ok(Bdd(r));
        }
        let n = self.nodes[a.index()];
        let lo = self.not(n.lo)?;
        let hi = self.not(n.hi)?;
        let r = self.mk(n.level, lo, hi)?;
        self.op_cache.insert(NOT_TAG, a.0, 0, r.0);
        self.op_cache.insert(NOT_TAG, r.0, 0, a.0);
        self.op_cache.maybe_grow();
        Ok(r)
    }

    /// If-then-else `f·g + !f·h`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the arena limit is hit.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddError> {
        let fg = self.and(f, g)?;
        let nf = self.not(f)?;
        let nfh = self.and(nf, h)?;
        self.or(fg, nfh)
    }

    /// Evaluates the function under a complete variable assignment
    /// (`assignment[v]` is the value of variable `v`).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::ArityMismatch`] if the slice length differs from
    /// the variable count.
    pub fn eval(&self, root: Bdd, assignment: &[bool]) -> Result<bool, BddError> {
        if assignment.len() != self.n_vars() {
            return Err(BddError::ArityMismatch {
                expected: self.n_vars(),
                got: assignment.len(),
            });
        }
        let mut cur = root;
        while !cur.is_terminal() {
            let n = self.nodes[cur.index()];
            let var = self.var_at_level[n.level as usize] as usize;
            cur = if assignment[var] { n.hi } else { n.lo };
        }
        Ok(cur.is_true())
    }

    fn check_probs(&self, probs: &[f64]) -> Result<(), BddError> {
        if probs.len() != self.n_vars() {
            return Err(BddError::ArityMismatch {
                expected: self.n_vars(),
                got: probs.len(),
            });
        }
        for (var, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(BddError::InvalidProbability { var, value: p });
            }
        }
        Ok(())
    }

    /// Exact signal probability `P[f = 1]` given independent per-variable
    /// probabilities `P[v = 1] = probs[v]`. Linear in the number of BDD
    /// nodes; memoized into a reusable dense arena, so repeated calls
    /// allocate nothing.
    ///
    /// This is the core primitive of the paper's power estimator: for a
    /// domino gate, the switching probability *equals* this value
    /// (Property 2.1).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::ArityMismatch`] on length mismatch or
    /// [`BddError::InvalidProbability`] for values outside `[0, 1]`.
    pub fn signal_probability(&self, root: Bdd, probs: &[f64]) -> Result<f64, BddError> {
        self.check_probs(probs)?;
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.nodes.len(), 0);
        Ok(self.prob_rec(root, probs, &mut scratch))
    }

    /// Batched [`BddManager::signal_probability`]: one shared memo table
    /// across all roots, so shared subgraphs are only visited once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BddManager::signal_probability`].
    pub fn signal_probabilities(&self, roots: &[Bdd], probs: &[f64]) -> Result<Vec<f64>, BddError> {
        let mut out = Vec::new();
        self.signal_probabilities_into(roots, probs, &mut out)?;
        Ok(out)
    }

    /// [`BddManager::signal_probabilities`] writing into a caller-owned
    /// buffer, so sweep loops (sequential probability fixpoints) reuse one
    /// allocation across evaluations. `out` is cleared first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BddManager::signal_probability`].
    pub fn signal_probabilities_into(
        &self,
        roots: &[Bdd],
        probs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), BddError> {
        self.check_probs(probs)?;
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.nodes.len(), 0);
        out.clear();
        out.reserve(roots.len());
        for &r in roots {
            out.push(self.prob_rec(r, probs, &mut scratch));
        }
        Ok(())
    }

    fn prob_rec(&self, b: Bdd, probs: &[f64], scratch: &mut EvalScratch) -> f64 {
        if b.is_false() {
            return 0.0;
        }
        if b.is_true() {
            return 1.0;
        }
        if let Some(p) = scratch.get(b.index()) {
            return p;
        }
        let n = self.nodes[b.index()];
        let var = self.var_at_level[n.level as usize] as usize;
        let p_var = probs[var];
        let p = (1.0 - p_var) * self.prob_rec(n.lo, probs, scratch)
            + p_var * self.prob_rec(n.hi, probs, scratch);
        scratch.set(b.index(), p);
        p
    }

    /// Number of satisfying assignments of `root` over all `n_vars`
    /// variables.
    pub fn sat_count(&self, root: Bdd) -> f64 {
        let p = self
            .signal_probability(root, &vec![0.5; self.n_vars()])
            .expect("uniform probabilities are valid");
        p * (2f64).powi(self.n_vars() as i32)
    }

    /// The set of variables the function depends on, sorted ascending.
    pub fn support(&self, root: Bdd) -> Vec<usize> {
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.nodes.len(), self.n_vars());
        let mut vars = Vec::new();
        scratch.stack.push(root);
        while let Some(b) = scratch.stack.pop() {
            if b.is_terminal() || !scratch.visit(b.index()) {
                continue;
            }
            let n = self.nodes[b.index()];
            let var = self.var_at_level[n.level as usize] as usize;
            if scratch.visit_var(var) {
                vars.push(var);
            }
            scratch.stack.push(n.lo);
            scratch.stack.push(n.hi);
        }
        vars.sort_unstable();
        vars
    }

    /// Number of distinct non-terminal nodes reachable from the given roots
    /// (shared nodes counted once). This is the metric of the paper's
    /// Figure 10 ordering comparison.
    pub fn node_count(&self, roots: &[Bdd]) -> usize {
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.nodes.len(), 0);
        scratch.stack.extend_from_slice(roots);
        let mut count = 0;
        while let Some(b) = scratch.stack.pop() {
            if b.is_terminal() || !scratch.visit(b.index()) {
                continue;
            }
            count += 1;
            let n = self.nodes[b.index()];
            scratch.stack.push(n.lo);
            scratch.stack.push(n.hi);
        }
        count
    }

    /// Existential quantification `∃var. f = f[var←0] + f[var←1]`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] for out-of-range variables or
    /// [`BddError::NodeLimit`] on blow-up.
    pub fn exists(&mut self, root: Bdd, var: usize) -> Result<Bdd, BddError> {
        let lo = self.cofactor(root, var, false)?;
        let hi = self.cofactor(root, var, true)?;
        self.or(lo, hi)
    }

    /// Universal quantification `∀var. f = f[var←0] · f[var←1]`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] for out-of-range variables or
    /// [`BddError::NodeLimit`] on blow-up.
    pub fn forall(&mut self, root: Bdd, var: usize) -> Result<Bdd, BddError> {
        let lo = self.cofactor(root, var, false)?;
        let hi = self.cofactor(root, var, true)?;
        self.and(lo, hi)
    }

    /// Functional composition `f[var ← g]` via Shannon expansion:
    /// `g·f[var←1] + !g·f[var←0]`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] for out-of-range variables or
    /// [`BddError::NodeLimit`] on blow-up.
    pub fn compose(&mut self, root: Bdd, var: usize, g: Bdd) -> Result<Bdd, BddError> {
        let hi = self.cofactor(root, var, true)?;
        let lo = self.cofactor(root, var, false)?;
        self.ite(g, hi, lo)
    }

    /// Positive cofactor of `root` with respect to `var` (i.e. `f[var←1]`
    /// when `positive`, else `f[var←0]`).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::UnknownVariable`] for out-of-range variables or
    /// [`BddError::NodeLimit`] on blow-up.
    pub fn cofactor(&mut self, root: Bdd, var: usize, positive: bool) -> Result<Bdd, BddError> {
        if var >= self.n_vars() {
            return Err(BddError::UnknownVariable {
                var,
                n_vars: self.n_vars(),
            });
        }
        let target = self.level_of_var[var];
        // The memo lives outside the RefCell because the recursion needs
        // `&mut self` (it creates nodes); take it, run, put it back. Only
        // nodes that existed at entry are memoized, so sizing it now is
        // sound even though the arena grows underneath.
        let mut memo = std::mem::take(&mut self.cof_scratch);
        memo.begin(self.nodes.len());
        let result = self.cofactor_rec(root, target, positive, &mut memo);
        self.cof_scratch = memo;
        result
    }

    fn cofactor_rec(
        &mut self,
        b: Bdd,
        target: u32,
        positive: bool,
        memo: &mut CofScratch,
    ) -> Result<Bdd, BddError> {
        if b.is_terminal() {
            return Ok(b);
        }
        let n = self.nodes[b.index()];
        if n.level > target {
            return Ok(b);
        }
        if let Some(r) = memo.get(b.index()) {
            return Ok(r);
        }
        let r = if n.level == target {
            if positive {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.cofactor_rec(n.lo, target, positive, memo)?;
            let hi = self.cofactor_rec(n.hi, target, positive, memo)?;
            self.mk(n.level, lo, hi)?
        };
        memo.set(b.index(), r);
        Ok(r)
    }

    /// Canonical structural digest of the function DAG reachable from
    /// `roots`: a 64-bit FNV-1a over `(variable, lo, hi)` triples in a
    /// deterministic first-visit DFS numbering (lo before hi, roots in
    /// order), closed over the roots' canonical ids.
    ///
    /// The digest is a function of the *represented functions and variable
    /// identities only* — arena layout, handle values and the variable
    /// order drop out. Two managers holding the same functions under the
    /// same order digest identically even if their arenas differ (the
    /// property the sift-vs-fresh-build differential test pins), and a
    /// swap pair that returns to the original order restores the original
    /// digest (the involution test).
    pub fn digest(&self, roots: &[Bdd]) -> u64 {
        const UNVISITED: u64 = u64::MAX;
        let mut canon = vec![UNVISITED; self.nodes.len()];
        canon[0] = 0;
        canon[1] = 1;
        let mut visit_order: Vec<u32> = Vec::new();
        let mut stack: Vec<Bdd> = Vec::new();
        for &r in roots.iter().rev() {
            stack.push(r);
        }
        let mut next = 2u64;
        while let Some(b) = stack.pop() {
            if canon[b.index()] != UNVISITED {
                continue;
            }
            canon[b.index()] = next;
            next += 1;
            visit_order.push(b.raw());
            let n = self.nodes[b.index()];
            // Push hi first so lo is visited (and numbered) first.
            stack.push(n.hi);
            stack.push(n.lo);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &i in &visit_order {
            let n = self.nodes[i as usize];
            mix(&mut h, u64::from(self.var_at_level[n.level as usize]));
            mix(&mut h, canon[n.lo.index()]);
            mix(&mut h, canon[n.hi.index()]);
        }
        for &r in roots {
            mix(&mut h, canon[r.index()]);
        }
        h
    }

    /// Garbage-collects the arena down to the nodes reachable from `roots`
    /// (plus the terminals), renumbering survivors in ascending old-handle
    /// order, rebuilding the unique table and dropping the op cache (whose
    /// entries are keyed by the old handles). Returns the remapped `roots`
    /// positionally.
    ///
    /// Level swaps strand dead nodes in the arena (an in-place rewrite
    /// orphans the children it no longer points to); a sifting pass ends
    /// with a compaction so `stats().nodes` means live size again.
    /// Traffic counters survive.
    pub fn compact(&mut self, roots: &[Bdd]) -> Vec<Bdd> {
        let n = self.nodes.len();
        let mut keep = vec![false; n];
        keep[0] = true;
        keep[1] = true;
        let mut stack: Vec<Bdd> = roots.to_vec();
        while let Some(b) = stack.pop() {
            if keep[b.index()] {
                continue;
            }
            keep[b.index()] = true;
            let nd = self.nodes[b.index()];
            stack.push(nd.lo);
            stack.push(nd.hi);
        }
        let mut map = vec![0u32; n];
        let mut next = 2u32;
        map[1] = 1;
        for (i, &kept) in keep.iter().enumerate().skip(2) {
            if kept {
                map[i] = next;
                next += 1;
            }
        }
        let mut new_nodes = Vec::with_capacity(next as usize);
        new_nodes.push(self.nodes[0]);
        new_nodes.push(self.nodes[1]);
        for (i, &kept) in keep.iter().enumerate().skip(2) {
            if kept {
                let nd = self.nodes[i];
                new_nodes.push(Node {
                    level: nd.level,
                    lo: Bdd(map[nd.lo.index()]),
                    hi: Bdd(map[nd.hi.index()]),
                });
            }
        }
        self.nodes = new_nodes;
        self.unique.clear();
        for (i, nd) in self.nodes.iter().enumerate().skip(2) {
            self.unique.insert(nd.level, nd.lo.0, nd.hi.0, i as u32);
        }
        self.op_cache.clear();
        roots.iter().map(|r| Bdd(map[r.index()])).collect()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars() -> (BddManager, Bdd, Bdd, Bdd) {
        let mut m = BddManager::new(3);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        (m, a, b, c)
    }

    #[test]
    fn terminal_identities() {
        let (mut m, a, _, _) = three_vars();
        assert_eq!(m.and(a, Bdd::TRUE).unwrap(), a);
        assert_eq!(m.and(a, Bdd::FALSE).unwrap(), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE).unwrap(), a);
        assert_eq!(m.or(a, Bdd::TRUE).unwrap(), Bdd::TRUE);
        assert_eq!(m.xor(a, a).unwrap(), Bdd::FALSE);
        assert_eq!(m.and(a, a).unwrap(), a);
        assert_eq!(m.or(a, a).unwrap(), a);
    }

    #[test]
    fn hash_consing_makes_equal_functions_identical() {
        let (mut m, a, b, c) = three_vars();
        // (a·b)·c == a·(b·c)
        let ab = m.and(a, b).unwrap();
        let abc1 = m.and(ab, c).unwrap();
        let bc = m.and(b, c).unwrap();
        let abc2 = m.and(a, bc).unwrap();
        assert_eq!(abc1, abc2);
        // DeMorgan: !(a+b) == !a·!b
        let aob = m.or(a, b).unwrap();
        let lhs = m.not(aob).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let rhs = m.and(na, nb).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation() {
        let (mut m, a, b, _) = three_vars();
        let f = m.and(a, b).unwrap();
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        assert_eq!(nnf, f);
    }

    #[test]
    fn eval_matches_semantics() {
        let (mut m, a, b, c) = three_vars();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap(); // f = a·b + c
        for bits in 0..8u32 {
            let va = bits & 1 != 0;
            let vb = bits & 2 != 0;
            let vc = bits & 4 != 0;
            assert_eq!(
                m.eval(f, &[va, vb, vc]).unwrap(),
                (va && vb) || vc,
                "bits {bits}"
            );
        }
    }

    #[test]
    fn xor_semantics() {
        let (mut m, a, b, _) = three_vars();
        let f = m.xor(a, b).unwrap();
        assert!(m.eval(f, &[true, false, false]).unwrap());
        assert!(m.eval(f, &[false, true, false]).unwrap());
        assert!(!m.eval(f, &[true, true, false]).unwrap());
        assert!(!m.eval(f, &[false, false, false]).unwrap());
    }

    #[test]
    fn ite_semantics() {
        let (mut m, a, b, c) = three_vars();
        let f = m.ite(a, b, c).unwrap();
        for bits in 0..8u32 {
            let va = bits & 1 != 0;
            let vb = bits & 2 != 0;
            let vc = bits & 4 != 0;
            assert_eq!(m.eval(f, &[va, vb, vc]).unwrap(), if va { vb } else { vc });
        }
    }

    #[test]
    fn signal_probability_independent_product() {
        let (mut m, a, b, c) = three_vars();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        // P = 1 - (1 - pa·pb)(1 - pc)
        let (pa, pb, pc) = (0.9, 0.8, 0.3);
        let expect = 1.0 - (1.0 - pa * pb) * (1.0 - pc);
        let got = m.signal_probability(f, &[pa, pb, pc]).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn probability_of_complement_sums_to_one() {
        let (mut m, a, b, c) = three_vars();
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap();
        let nf = m.not(f).unwrap();
        let probs = [0.42, 0.13, 0.77];
        let p = m.signal_probability(f, &probs).unwrap();
        let q = m.signal_probability(nf, &probs).unwrap();
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_probabilities_match_individual() {
        let (mut m, a, b, c) = three_vars();
        let f1 = m.and(a, b).unwrap();
        let f2 = m.or(f1, c).unwrap();
        let f3 = m.xor(a, c).unwrap();
        let probs = [0.5, 0.25, 0.75];
        let batch = m.signal_probabilities(&[f1, f2, f3], &probs).unwrap();
        for (i, &f) in [f1, f2, f3].iter().enumerate() {
            assert_eq!(batch[i], m.signal_probability(f, &probs).unwrap());
        }
    }

    #[test]
    fn invalid_probability_rejected() {
        let (m, a, _, _) = three_vars();
        assert!(matches!(
            m.signal_probability(a, &[1.5, 0.5, 0.5]),
            Err(BddError::InvalidProbability { var: 0, .. })
        ));
        assert!(matches!(
            m.signal_probability(a, &[0.5]),
            Err(BddError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn sat_count_majority() {
        let (mut m, a, b, c) = three_vars();
        // majority(a,b,c) has 4 satisfying assignments
        let ab = m.and(a, b).unwrap();
        let ac = m.and(a, c).unwrap();
        let bc = m.and(b, c).unwrap();
        let f = m.or_many([ab, ac, bc]).unwrap();
        assert_eq!(m.sat_count(f), 4.0);
    }

    #[test]
    fn support_and_node_count() {
        let (mut m, a, _b, c) = three_vars();
        let f = m.and(a, c).unwrap();
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.node_count(&[f]), 2);
        // Shared roots counted once.
        assert_eq!(m.node_count(&[f, f]), 2);
        assert_eq!(m.node_count(&[Bdd::TRUE]), 0);
    }

    #[test]
    fn variable_order_respected() {
        // Order c, b, a: c at the root.
        let mut m = BddManager::with_order(vec![2, 1, 0]).unwrap();
        let a = m.var(0).unwrap();
        let c = m.var(2).unwrap();
        let f = m.and(a, c).unwrap();
        // Root should test variable 2 (level 0).
        assert_eq!(m.order(), vec![2, 1, 0]);
        // Evaluation stays consistent regardless of order.
        assert!(m.eval(f, &[true, false, true]).unwrap());
        assert!(!m.eval(f, &[true, false, false]).unwrap());
    }

    #[test]
    fn bad_order_rejected() {
        assert!(BddManager::with_order(vec![0, 0, 1]).is_err());
        assert!(BddManager::with_order(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = BddManager::new(16);
        let vars: Vec<Bdd> = (0..16).map(|i| m.var(i).unwrap()).collect();
        let limit = m.stats().nodes + 4;
        m.set_node_limit(limit);
        let mut acc = Bdd::TRUE;
        let mut hit_limit = false;
        for chunk in vars.chunks(2) {
            let x = m.xor(chunk[0], chunk[1]);
            match x.and_then(|x| m.and(acc, x)) {
                Ok(r) => acc = r,
                Err(BddError::NodeLimit { limit: l }) if l == limit => {
                    hit_limit = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_limit);
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (mut m, a, b, c) = three_vars();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let f1 = m.cofactor(f, 0, true).unwrap();
        let f0 = m.cofactor(f, 0, false).unwrap();
        // Shannon: f = a·f1 + !a·f0
        let re = m.ite(a, f1, f0).unwrap();
        assert_eq!(re, f);
        // Cofactors do not depend on the variable.
        assert!(!m.support(f1).contains(&0));
        assert!(!m.support(f0).contains(&0));
    }

    #[test]
    fn quantification_semantics() {
        let (mut m, a, b, c) = three_vars();
        // f = a·b + !a·c
        let f = m.ite(a, b, c).unwrap();
        // ∃a. f = b + c
        let ex = m.exists(f, 0).unwrap();
        let bc = m.or(b, c).unwrap();
        assert_eq!(ex, bc);
        // ∀a. f = b · c
        let fa = m.forall(f, 0).unwrap();
        let band = m.and(b, c).unwrap();
        assert_eq!(fa, band);
        // ∃ then ∀ commute for distinct variables.
        let e_then_a = {
            let e = m.exists(f, 1).unwrap();
            m.forall(e, 2).unwrap()
        };
        let a_then_e = {
            let fa = m.forall(f, 2).unwrap();
            m.exists(fa, 1).unwrap()
        };
        assert_eq!(e_then_a, a_then_e);
    }

    #[test]
    fn compose_substitutes_functions() {
        let (mut m, a, b, c) = three_vars();
        // f = a·b; f[a ← (b + c)] = (b+c)·b = b
        let f = m.and(a, b).unwrap();
        let g = m.or(b, c).unwrap();
        let comp = m.compose(f, 0, g).unwrap();
        assert_eq!(comp, b);
        // Composing a variable with itself is the identity.
        let same = m.compose(f, 0, a).unwrap();
        assert_eq!(same, f);
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut m = BddManager::new(2);
        assert!(matches!(
            m.var(2),
            Err(BddError::UnknownVariable { var: 2, n_vars: 2 })
        ));
        assert!(m.nvar(5).is_err());
        let a = m.var(0).unwrap();
        assert!(m.cofactor(a, 9, true).is_err());
    }

    #[test]
    fn stats_reflect_growth() {
        let (m0, _, _, _) = three_vars();
        let s = m0.stats();
        assert_eq!(s.n_vars, 3);
        assert!(s.nodes >= 5); // 2 terminals + 3 variable nodes
    }
}
