//! Cache-friendly hash structures for the BDD kernel: an open-addressed
//! [`UniqueTable`] (hash-consing) and a direct-mapped [`OpCache`]
//! (binary-operation memoization).
//!
//! Both replace `std::collections::HashMap`s that sat on the manager's
//! hottest paths. The wins are structural, not algorithmic:
//!
//! * keys and values live inline in one flat allocation (16-byte slots), so
//!   a probe is one cache line instead of a SipHash run plus pointer chase;
//! * hashing is the Fx multiply-rotate mix from [`crate::fx`];
//! * the op cache is *direct-mapped*: a colliding insert simply overwrites.
//!   A lost entry only costs a recomputation — results are unchanged
//!   because BDD operations are canonicalizing, which is exactly the
//!   trade CUDD-style packages make.
//!
//! Both structures count hits and misses; the manager surfaces them through
//! [`BddStats`](crate::BddStats) and `dominoc run --stats`.

use crate::fx::hash3;

/// Slot value marking an empty unique-table slot. Valid node handles start
/// at 2 (the terminals are 0 and 1 and are never hash-consed), so 0 is free
/// to use as the sentinel.
const EMPTY: u32 = 0;

#[derive(Debug, Clone, Copy)]
struct UniqueSlot {
    level: u32,
    lo: u32,
    hi: u32,
    /// The interned node handle, or [`EMPTY`].
    value: u32,
}

const VACANT: UniqueSlot = UniqueSlot {
    level: 0,
    lo: 0,
    hi: 0,
    value: EMPTY,
};

/// Open-addressed hash table interning `(level, lo, hi)` → node handle.
///
/// Linear probing over a power-of-two slot array at ≤ 75% load. Handles are
/// dense `u32`s (BDD node indices ≥ 2), which keeps each slot at 16 bytes.
///
/// # Example
///
/// ```
/// use domino_bdd::table::UniqueTable;
///
/// let mut t = UniqueTable::new();
/// assert_eq!(t.get(3, 0, 1), None);
/// t.insert(3, 0, 1, 2);
/// assert_eq!(t.get(3, 0, 1), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct UniqueTable {
    slots: Vec<UniqueSlot>,
    mask: usize,
    len: usize,
    hits: u64,
    misses: u64,
}

impl Default for UniqueTable {
    fn default() -> Self {
        Self::new()
    }
}

impl UniqueTable {
    /// An empty table with a small initial capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity_pow2(1 << 10)
    }

    /// Ensures at least `entries` keys fit without rehashing. Cheap while
    /// the table is still empty (it simply reallocates the slot array), so
    /// callers that know the workload size should reserve up front.
    pub fn reserve(&mut self, entries: usize) {
        let needed = (entries * 4 / 3 + 1).next_power_of_two();
        if needed > self.slots.len() {
            if self.len == 0 {
                let (hits, misses) = (self.hits, self.misses);
                *self = Self::with_capacity_pow2(needed);
                self.hits = hits;
                self.misses = misses;
            } else {
                while self.slots.len() < needed {
                    self.grow();
                }
            }
        }
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        UniqueTable {
            slots: vec![VACANT; cap],
            mask: cap - 1,
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of interned entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(hits, misses)` counters of [`UniqueTable::get`].
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up the handle interned for `(level, lo, hi)`, counting a hit
    /// or a miss.
    pub fn get(&mut self, level: u32, lo: u32, hi: u32) -> Option<u32> {
        let mut i = hash3(level, lo, hi) as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.value == EMPTY {
                self.misses += 1;
                return None;
            }
            if slot.level == level && slot.lo == lo && slot.hi == hi {
                self.hits += 1;
                return Some(slot.value);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Interns `(level, lo, hi) → value`. The key must not already be
    /// present (the manager only inserts after a failed [`UniqueTable::get`]).
    pub fn insert(&mut self, level: u32, lo: u32, hi: u32, value: u32) {
        debug_assert_ne!(value, EMPTY, "node handles start at 2");
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = hash3(level, lo, hi) as usize & self.mask;
        while self.slots[i].value != EMPTY {
            debug_assert!(
                !(self.slots[i].level == level && self.slots[i].lo == lo && self.slots[i].hi == hi),
                "duplicate unique-table insert"
            );
            i = (i + 1) & self.mask;
        }
        self.slots[i] = UniqueSlot {
            level,
            lo,
            hi,
            value,
        };
        self.len += 1;
    }

    /// Removes the entry for `(level, lo, hi)`, returning `true` when it was
    /// present. Uses backward-shift deletion: every entry whose probe chain
    /// ran through the vacated slot is shifted back, so no tombstones
    /// accumulate and [`UniqueTable::get`] stays a plain
    /// probe-until-vacant loop. Level swaps lean on this — a swap retracts
    /// every key of the two levels and re-interns the survivors.
    pub fn remove(&mut self, level: u32, lo: u32, hi: u32) -> bool {
        let mut i = hash3(level, lo, hi) as usize & self.mask;
        loop {
            let slot = self.slots[i];
            if slot.value == EMPTY {
                return false;
            }
            if slot.level == level && slot.lo == lo && slot.hi == hi {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let slot = self.slots[j];
            if slot.value == EMPTY {
                break;
            }
            let ideal = hash3(slot.level, slot.lo, slot.hi) as usize & self.mask;
            // Shift `j` into the hole iff its probe began at or before the
            // hole (cyclically) — i.e. the hole sits on its probe chain.
            if (j.wrapping_sub(ideal) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.slots[hole] = slot;
                hole = j;
            }
        }
        self.slots[hole] = VACANT;
        true
    }

    /// Vacates every slot, keeping capacity and the hit/miss counters.
    /// Compaction rebuilds the table through this after remapping handles.
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
        self.len = 0;
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![VACANT; 0]);
        let cap = old.len() * 2;
        self.slots = vec![VACANT; cap];
        self.mask = cap - 1;
        for slot in old {
            if slot.value == EMPTY {
                continue;
            }
            let mut i = hash3(slot.level, slot.lo, slot.hi) as usize & self.mask;
            while self.slots[i].value != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = slot;
        }
    }
}

/// Operation tag in an [`OpCache`] slot; `0` marks a vacant slot.
#[derive(Debug, Clone, Copy)]
struct OpSlot {
    tag: u32,
    a: u32,
    b: u32,
    result: u32,
}

const OP_VACANT: OpSlot = OpSlot {
    tag: 0,
    a: 0,
    b: 0,
    result: 0,
};

/// Direct-mapped memoization cache for `(op, a, b) → result`.
///
/// Exactly one slot per hash index: a colliding insert evicts the previous
/// entry. Lookups are a single indexed load and compare — no probing — and
/// an evicted entry only costs recomputation, never correctness, because
/// the memoized operations are deterministic.
///
/// `op` tags are small nonzero integers chosen by the caller (the manager
/// uses and/or/xor/not).
///
/// # Example
///
/// ```
/// use domino_bdd::table::OpCache;
///
/// let mut c = OpCache::new();
/// assert_eq!(c.get(1, 4, 7), None);
/// c.insert(1, 4, 7, 9);
/// assert_eq!(c.get(1, 4, 7), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct OpCache {
    slots: Vec<OpSlot>,
    mask: usize,
    occupied: usize,
    hits: u64,
    misses: u64,
}

impl Default for OpCache {
    fn default() -> Self {
        Self::new()
    }
}

impl OpCache {
    /// An empty cache with a small initial capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity_pow2(1 << 11)
    }

    /// Ensures at least `entries` slots exist (rounded up to a power of
    /// two). Cheap while the cache is empty.
    pub fn reserve(&mut self, entries: usize) {
        let needed = entries.next_power_of_two();
        if needed > self.slots.len() {
            if self.occupied == 0 {
                *self = Self::with_capacity_pow2(needed);
            } else {
                let hits = self.hits;
                let misses = self.misses;
                let mut grown = Self::with_capacity_pow2(needed);
                for slot in &self.slots {
                    if slot.tag != 0 {
                        grown.insert(slot.tag, slot.a, slot.b, slot.result);
                    }
                }
                grown.hits = hits;
                grown.misses = misses;
                *self = grown;
            }
        }
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        OpCache {
            slots: vec![OP_VACANT; cap],
            mask: cap - 1,
            occupied: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live (non-evicted) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` if no entry is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// `(hits, misses)` counters of [`OpCache::get`].
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up `(op, a, b)`, counting a hit or a miss. `op` must be
    /// nonzero.
    pub fn get(&mut self, op: u32, a: u32, b: u32) -> Option<u32> {
        debug_assert_ne!(op, 0);
        let slot = &self.slots[hash3(op, a, b) as usize & self.mask];
        if slot.tag == op && slot.a == a && slot.b == b {
            self.hits += 1;
            Some(slot.result)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Stores `(op, a, b) → result`, evicting whatever occupied the slot.
    pub fn insert(&mut self, op: u32, a: u32, b: u32, result: u32) {
        debug_assert_ne!(op, 0);
        let i = hash3(op, a, b) as usize & self.mask;
        if self.slots[i].tag == 0 {
            self.occupied += 1;
        }
        self.slots[i] = OpSlot {
            tag: op,
            a,
            b,
            result,
        };
    }

    /// Vacates every slot, keeping capacity and the hit/miss counters. A
    /// memoized result is only valid while its operand handles denote the
    /// functions they had when it was stored, so compaction (which renumbers
    /// handles) must drop the cache wholesale.
    pub fn clear(&mut self) {
        self.slots.fill(OP_VACANT);
        self.occupied = 0;
    }

    /// Doubles the slot array (rehashing live entries) while the occupancy
    /// is above 75%. The manager calls this as the node arena grows so the
    /// cache keeps pace with the working set.
    pub fn maybe_grow(&mut self) {
        while self.occupied * 4 > self.slots.len() * 3 {
            let old = std::mem::replace(&mut self.slots, vec![OP_VACANT; 0]);
            let cap = old.len() * 2;
            self.slots = vec![OP_VACANT; cap];
            self.mask = cap - 1;
            self.occupied = 0;
            for slot in old {
                if slot.tag != 0 {
                    let i = hash3(slot.tag, slot.a, slot.b) as usize & self.mask;
                    if self.slots[i].tag == 0 {
                        self.occupied += 1;
                    }
                    self.slots[i] = slot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unique_table_grows_past_initial_capacity() {
        let mut t = UniqueTable::with_capacity_pow2(4);
        for i in 0..10_000u32 {
            t.insert(i % 7, i, i + 1, i + 2);
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(t.get(i % 7, i, i + 1), Some(i + 2), "key {i}");
        }
        let (hits, misses) = t.counters();
        assert_eq!(hits, 10_000);
        assert_eq!(misses, 0);
    }

    #[test]
    fn unique_table_matches_hashmap_reference() {
        // Deterministic pseudo-random workload mirroring manager usage:
        // lookup first, insert on miss.
        let mut t = UniqueTable::new();
        let mut reference: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next_value = 2u32;
        for _ in 0..50_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let level = (state >> 48) as u32 % 64;
            let lo = (state >> 24) as u32 % 512;
            let hi = state as u32 % 512;
            let expect = reference.get(&(level, lo, hi)).copied();
            assert_eq!(t.get(level, lo, hi), expect);
            if expect.is_none() {
                reference.insert((level, lo, hi), next_value);
                t.insert(level, lo, hi, next_value);
                next_value += 1;
            }
        }
        assert_eq!(t.len(), reference.len());
    }

    #[test]
    fn unique_table_remove_matches_hashmap_reference() {
        // Interleaved insert/remove/get workload against a HashMap model,
        // exercising the backward-shift paths (dense keys force long probe
        // chains at 75% load).
        let mut t = UniqueTable::with_capacity_pow2(8);
        let mut reference: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next_value = 2u32;
        for step in 0..50_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let level = (state >> 48) as u32 % 8;
            let lo = (state >> 24) as u32 % 64;
            let hi = state as u32 % 64;
            let key = (level, lo, hi);
            if step % 3 == 2 {
                let expect = reference.remove(&key).is_some();
                assert_eq!(t.remove(level, lo, hi), expect, "step {step}");
            } else {
                let expect = reference.get(&key).copied();
                assert_eq!(t.get(level, lo, hi), expect, "step {step}");
                if expect.is_none() {
                    reference.insert(key, next_value);
                    t.insert(level, lo, hi, next_value);
                    next_value += 1;
                }
            }
            assert_eq!(t.len(), reference.len());
        }
        // Every surviving key still answers after all the shifting.
        for (&(level, lo, hi), &v) in &reference {
            assert_eq!(t.get(level, lo, hi), Some(v));
        }
    }

    #[test]
    fn unique_table_remove_shifts_probe_chains_back() {
        // Force one shared probe chain: with 8 slots, keys hashing to the
        // same bucket collide by construction after enough inserts.
        let mut t = UniqueTable::with_capacity_pow2(8);
        for i in 0..5u32 {
            t.insert(1, i, 0, i + 2);
        }
        assert!(t.remove(1, 0, 0));
        assert!(!t.remove(1, 0, 0), "double remove reports absence");
        for i in 1..5u32 {
            assert_eq!(t.get(1, i, 0), Some(i + 2), "key {i} lost after shift");
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn clears_keep_capacity_and_counters() {
        let mut t = UniqueTable::with_capacity_pow2(16);
        t.insert(1, 2, 3, 4);
        assert_eq!(t.get(1, 2, 3), Some(4));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(1, 2, 3), None);
        let (hits, misses) = t.counters();
        assert_eq!((hits, misses), (1, 1), "counters survive clear");

        let mut c = OpCache::with_capacity_pow2(4);
        c.insert(1, 2, 3, 4);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(1, 2, 3), None);
    }

    #[test]
    fn op_cache_is_direct_mapped() {
        let mut c = OpCache::with_capacity_pow2(2);
        c.insert(1, 10, 20, 30);
        // With two slots, some other key must collide eventually.
        let mut evicted = false;
        for i in 0..16u32 {
            c.insert(2, i, i, i);
            if c.get(1, 10, 20).is_none() {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "direct-mapped cache never evicted");
        assert!(c.len() <= 2);
    }

    #[test]
    fn op_cache_grow_preserves_entries() {
        let mut c = OpCache::with_capacity_pow2(4);
        for i in 0..64u32 {
            c.insert(1, i, i, i + 100);
            c.maybe_grow();
        }
        assert!(c.slots.len() > 4, "cache never grew");
        // Every live slot must still answer with its own value (growth
        // rehashes, it never corrupts).
        let live = (0..64u32)
            .filter(|&i| {
                let r = c.get(1, i, i);
                assert!(r.is_none() || r == Some(i + 100));
                r.is_some()
            })
            .count();
        assert_eq!(live, c.len());
    }
}
