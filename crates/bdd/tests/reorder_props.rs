//! Property battery for dynamic variable reordering: adjacent level swaps
//! are involutions, arbitrary swap sequences preserve every represented
//! function bit-for-bit, and a sifted manager is node-for-node equivalent
//! to a from-scratch build under the final order.
//!
//! Networks come from the `domino-workloads` control-block generator, so
//! the properties run over the same structure class as the benchmark
//! suite rather than hand-picked examples.
//!
//! All probability comparisons run at p = ½ for every source: with dyadic
//! inputs every intermediate value is an exact binary fraction (2⁻ᵏ sums
//! with k bounded by the variable count), so "semantics preserved" can be
//! asserted on the *bits* of `sat_count` and `signal_probability`, not
//! within a tolerance.

use std::collections::HashMap;

use domino_bdd::circuit::{source_nodes, CircuitBdds};
use domino_bdd::{Bdd, BddManager, ReorderConfig, ReorderMode};
use domino_netlist::{Network, NodeKind};
use domino_workloads::GeneratorSpec;
use proptest::prelude::*;

/// Rebuilds every node function of `net` in a fresh manager under the
/// declared (identity) source order — the same loop as `CircuitBdds`, but
/// with the manager kept mutable so the properties can swap its levels.
fn build_funcs(net: &Network) -> (BddManager, Vec<Bdd>) {
    let sources = source_nodes(net);
    let mut manager = BddManager::new(sources.len());
    let var_of: HashMap<_, _> = sources.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut funcs = vec![Bdd::FALSE; net.len()];
    for id in net.topo_order() {
        let node = net.node(id);
        let f = match node.kind {
            NodeKind::Input | NodeKind::Latch { .. } => manager.var(var_of[&id]).unwrap(),
            NodeKind::Constant(v) => manager.constant(v),
            NodeKind::Not => {
                let x = funcs[node.fanins[0].index()];
                manager.not(x).unwrap()
            }
            NodeKind::And => manager
                .and_many(node.fanins.iter().map(|f| funcs[f.index()]))
                .unwrap(),
            NodeKind::Or => manager
                .or_many(node.fanins.iter().map(|f| funcs[f.index()]))
                .unwrap(),
        };
        funcs[id.index()] = f;
    }
    (manager, funcs)
}

fn random_network(pis: usize, pos: usize, gates: usize, seed: u64) -> Network {
    domino_workloads::generate(&GeneratorSpec::control_block(
        format!("rp{seed}"),
        pis,
        pos,
        gates,
        seed,
    ))
    .expect("generator produces valid networks")
}

/// Deterministic level picker: splitmix64 over a running state.
fn next_level(state: &mut u64, n_levels: usize) -> usize {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % (n_levels - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Swapping the same adjacent level pair twice restores the manager's
    /// order, reachable node count and canonical digest exactly — and one
    /// swap really did exchange the two variables in between.
    #[test]
    fn adjacent_swap_is_an_involution(
        seed in 0u64..1000,
        pis in 4usize..10,
        pos in 1usize..4,
        gates in 8usize..30,
        pick in 0u64..1000,
    ) {
        let net = random_network(pis, pos, gates, seed);
        let (mut m, funcs) = build_funcs(&net);
        let mut state = pick;
        let level = next_level(&mut state, m.n_vars());
        let order = m.order();
        let count = m.node_count(&funcs);
        let digest = m.digest(&funcs);

        m.swap_adjacent_levels(level).unwrap();
        let mut swapped = order.clone();
        swapped.swap(level, level + 1);
        // One swap exchanges exactly the two variables (the count may
        // legitimately change — that is what sifting exploits)...
        prop_assert_eq!(m.order(), swapped);

        // ...and the second swap undoes everything.
        m.swap_adjacent_levels(level).unwrap();
        prop_assert_eq!(m.order(), order);
        prop_assert_eq!(m.node_count(&funcs), count);
        prop_assert_eq!(m.digest(&funcs), digest);
    }

    /// Any sequence of adjacent swaps leaves every node function denoting
    /// the same Boolean function: `sat_count` and `signal_probability`
    /// (at p = ½, where f64 arithmetic is exact) are bit-identical.
    #[test]
    fn swap_sequences_preserve_semantics(
        seed in 0u64..1000,
        pis in 4usize..10,
        pos in 1usize..4,
        gates in 8usize..30,
        swaps in 1usize..12,
        pick in 0u64..1000,
    ) {
        let net = random_network(pis, pos, gates, seed);
        let (mut m, funcs) = build_funcs(&net);
        let probs = vec![0.5; m.n_vars()];
        let before: Vec<(u64, u64)> = funcs
            .iter()
            .map(|&f| {
                let sat = m.sat_count(f).to_bits();
                let p = m.signal_probability(f, &probs).unwrap().to_bits();
                (sat, p)
            })
            .collect();

        let mut state = pick;
        for _ in 0..swaps {
            let level = next_level(&mut state, m.n_vars());
            m.swap_adjacent_levels(level).unwrap();
        }

        for (&f, &(sat, p)) in funcs.iter().zip(&before) {
            prop_assert_eq!(m.sat_count(f).to_bits(), sat);
            prop_assert_eq!(m.signal_probability(f, &probs).unwrap().to_bits(), p);
        }
    }

    /// Differential: after sifting, the manager is node-for-node
    /// equivalent to a from-scratch build under the final order — same
    /// reachable node count, same canonical digest.
    #[test]
    fn sifted_equals_fresh_build_under_final_order(
        seed in 0u64..1000,
        pis in 4usize..10,
        pos in 1usize..4,
        gates in 8usize..30,
    ) {
        let net = random_network(pis, pos, gates, seed);
        let identity: Vec<usize> = (0..source_nodes(&net).len()).collect();
        let (sifted, outcome) = CircuitBdds::build_reordered(
            &net,
            identity,
            &ReorderConfig::with_mode(ReorderMode::Sift),
        )
        .unwrap();
        let outcome = outcome.expect("sift records an outcome");
        let fresh = CircuitBdds::build_with_order(&net, outcome.final_order).unwrap();
        prop_assert_eq!(sifted.total_node_count(), fresh.total_node_count());
        prop_assert_eq!(sifted.bdd_digest(), fresh.bdd_digest());
    }
}
