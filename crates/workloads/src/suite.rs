//! The seven Table 1/2 circuits with the paper's published interface
//! counts.
//!
//! | circuit | paper PI/PO | paper MA size (cells) | here |
//! |---|---|---|---|
//! | Industry 1 | 127/122 | 1849 | seeded generator |
//! | Industry 2 | 97/86 | 2272 | seeded generator, balanced cones |
//! | Industry 3 | 117/199 | 1589 | seeded generator |
//! | apex7 | 79/36 | 394 | seeded generator |
//! | frg1 | 31/3 | 98 | seeded generator, heavy cone sharing |
//! | x1 | 87/28 | 404 | seeded generator |
//! | x3 | 235/99 | 1372 | seeded generator |
//!
//! Gate budgets, structure knobs and seeds are *calibrated*: budgets so the
//! minimum-area mapped cell count lands near the published MA size, and
//! structural knobs/seeds so each row reproduces the qualitative behaviour
//! the paper reports for that circuit (frg1's large saving under a tiny
//! 8-assignment search space, Industry 2's near-zero/negative saving, and
//! double-digit savings elsewhere). The calibration procedure is
//! `cargo run -p domino-bench --bin seed_sweep`; see DESIGN.md §3 and
//! EXPERIMENTS.md.

use domino_netlist::{NetlistError, Network};

use crate::generator::{generate, GeneratorSpec};

/// One benchmark circuit of the experimental suite.
#[derive(Debug, Clone)]
pub struct BenchmarkCircuit {
    /// Paper row name (`Industry 1`, `apex7`, ...).
    pub name: &'static str,
    /// Paper description column.
    pub description: &'static str,
    /// The published minimum-area size, for reference in reports.
    pub paper_ma_size: usize,
    /// The published MA power (mA), for reference in reports.
    pub paper_ma_power: f64,
    /// The published MP power saving (%), for reference in reports.
    pub paper_power_saving: f64,
    /// The network itself.
    pub network: Network,
}

/// Static definition of one suite row.
struct RowDef {
    name: &'static str,
    description: &'static str,
    n_inputs: usize,
    n_outputs: usize,
    n_gates: usize,
    window: usize,
    share_probability: f64,
    shared_picks: usize,
    skew: f64,
    seed: u64,
    paper_ma_size: usize,
    paper_ma_power: f64,
    paper_power_saving: f64,
}

const ROWS: [RowDef; 7] = [
    RowDef {
        name: "Industry 1",
        description: "Control Logic",
        n_inputs: 127,
        n_outputs: 122,
        n_gates: 1380,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 1.0,
        seed: 0,
        paper_ma_size: 1849,
        paper_ma_power: 12.47,
        paper_power_saving: 22.6,
    },
    RowDef {
        name: "Industry 2",
        description: "Control Logic",
        n_inputs: 97,
        n_outputs: 86,
        n_gates: 1560,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 0.05,
        seed: 2,
        paper_ma_size: 2272,
        paper_ma_power: 13.74,
        paper_power_saving: -2.8,
    },
    RowDef {
        name: "Industry 3",
        description: "Control Logic",
        n_inputs: 117,
        n_outputs: 199,
        n_gates: 1360,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 1.0,
        seed: 7,
        paper_ma_size: 1589,
        paper_ma_power: 11.77,
        paper_power_saving: 27.3,
    },
    RowDef {
        name: "apex7",
        description: "Public Domain",
        n_inputs: 79,
        n_outputs: 36,
        n_gates: 280,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 1.0,
        seed: 0,
        paper_ma_size: 394,
        paper_ma_power: 3.71,
        paper_power_saving: 19.5,
    },
    RowDef {
        name: "frg1",
        description: "Public Domain",
        n_inputs: 31,
        n_outputs: 3,
        n_gates: 66,
        window: 20,
        share_probability: 0.5,
        shared_picks: 4,
        skew: 1.0,
        seed: 29,
        paper_ma_size: 98,
        paper_ma_power: 1.30,
        paper_power_saving: 34.1,
    },
    RowDef {
        name: "x1",
        description: "Public Domain",
        n_inputs: 87,
        n_outputs: 28,
        n_gates: 290,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 0.6,
        seed: 4,
        paper_ma_size: 404,
        paper_ma_power: 2.57,
        paper_power_saving: 8.9,
    },
    RowDef {
        name: "x3",
        description: "Public Domain",
        n_inputs: 235,
        n_outputs: 99,
        n_gates: 1000,
        window: 14,
        share_probability: 0.25,
        shared_picks: 2,
        skew: 1.0,
        seed: 3,
        paper_ma_size: 1372,
        paper_ma_power: 7.49,
        paper_power_saving: 16.6,
    },
];

/// The generator specification of one suite row (by paper row name).
///
/// Exposed so calibration tooling (`seed_sweep`) and the suite itself share
/// one definition. Returns `None` for unknown names.
pub fn row_spec(name: &str) -> Option<GeneratorSpec> {
    let row = ROWS.iter().find(|r| {
        r.name.eq_ignore_ascii_case(name) || r.name.replace(' ', "").eq_ignore_ascii_case(name)
    })?;
    let mut spec = GeneratorSpec {
        name: row.name.to_string(),
        window: row.window,
        share_probability: row.share_probability,
        shared_picks: row.shared_picks,
        skew: row.skew,
        ..GeneratorSpec::control_block(row.name, row.n_inputs, row.n_outputs, row.n_gates, row.seed)
    };
    if row.name == "Industry 2" {
        // Dense inverted edges re-center internal probabilities around ½ —
        // the profile where phase assignment has nothing to win (the
        // paper's one negative row).
        spec.not_probability = 0.45;
    }
    Some(spec)
}

/// Names of every Table 1 suite row, in row order — the single source the
/// CLI, benches and tests enumerate the suite from.
pub fn table_row_names() -> Vec<&'static str> {
    ROWS.iter().map(|r| r.name).collect()
}

/// Names of the public-domain (Table 2) subset, in row order.
pub fn public_row_names() -> Vec<&'static str> {
    ROWS.iter()
        .filter(|r| r.description == "Public Domain")
        .map(|r| r.name)
        .collect()
}

/// The full seven-circuit suite of Table 1 (industry + public domain).
///
/// # Errors
///
/// Propagates generator construction errors (a bug if it ever fires).
pub fn table_suite() -> Result<Vec<BenchmarkCircuit>, NetlistError> {
    ROWS.iter()
        .map(|row| {
            let spec = row_spec(row.name).expect("row exists");
            Ok(BenchmarkCircuit {
                name: row.name,
                description: row.description,
                paper_ma_size: row.paper_ma_size,
                paper_ma_power: row.paper_ma_power,
                paper_power_saving: row.paper_power_saving,
                network: generate(&spec)?,
            })
        })
        .collect()
}

/// The four public-domain circuits of Table 2 (the timed-synthesis
/// experiment).
///
/// # Errors
///
/// Propagates generator construction errors.
pub fn public_suite() -> Result<Vec<BenchmarkCircuit>, NetlistError> {
    Ok(table_suite()?
        .into_iter()
        .filter(|c| c.description == "Public Domain")
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_published_interfaces() {
        let suite = table_suite().unwrap();
        let expected = [
            ("Industry 1", 127, 122),
            ("Industry 2", 97, 86),
            ("Industry 3", 117, 199),
            ("apex7", 79, 36),
            ("frg1", 31, 3),
            ("x1", 87, 28),
            ("x3", 235, 99),
        ];
        assert_eq!(suite.len(), 7);
        for (circuit, (name, pi, po)) in suite.iter().zip(expected) {
            assert_eq!(circuit.name, name);
            assert_eq!(circuit.network.inputs().len(), pi, "{name} inputs");
            assert_eq!(circuit.network.outputs().len(), po, "{name} outputs");
            circuit.network.validate().unwrap();
        }
    }

    #[test]
    fn public_suite_is_the_mcnc_subset() {
        let public = public_suite().unwrap();
        let names: Vec<&str> = public.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["apex7", "frg1", "x1", "x3"]);
        assert_eq!(names, public_row_names());
    }

    #[test]
    fn row_name_lists_match_the_suites() {
        let table: Vec<&str> = table_suite().unwrap().iter().map(|c| c.name).collect();
        assert_eq!(table, table_row_names());
    }

    #[test]
    fn suite_is_reproducible() {
        let a = table_suite().unwrap();
        let b = table_suite().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.network, y.network, "{}", x.name);
        }
    }

    #[test]
    fn row_spec_lookup() {
        assert!(row_spec("frg1").is_some());
        assert!(row_spec("Industry 1").is_some());
        assert!(row_spec("industry1").is_some());
        assert!(row_spec("nonesuch").is_none());
        let spec = row_spec("frg1").unwrap();
        assert_eq!(spec.n_inputs, 31);
        assert_eq!(spec.shared_picks, 4);
    }
}
