//! Benchmark circuits for the `dominolp` experiments.
//!
//! The paper evaluates on three proprietary Intel control blocks and four
//! MCNC benchmarks (apex7, frg1, x1, x3). Neither set is redistributable
//! here, so this crate provides **seeded synthetic equivalents**: random
//! control-logic networks with the *published* primary input/output counts
//! and sizes calibrated so the minimum-area mapped cell counts land near the
//! published "MA Size" column (see DESIGN.md §3 for why this substitution
//! preserves the experiments). Real MCNC `.blif` files drop in via
//! [`domino_netlist::parse_blif`] if you have them.
//!
//! Contents:
//!
//! * generator — the seeded random control-logic generator
//!   ([`GeneratorSpec`], [`generate`]) and the depth/fanout-parameterized
//!   giant-circuit generator ([`GiantSpec`], [`generate_giant`]);
//! * suite — the seven Table 1/2 circuits ([`BenchmarkCircuit`],
//!   [`table_suite`], [`public_suite`]);
//! * [`figures`] — the exact circuits/graphs behind Figures 3, 5, 7, 9
//!   and 10.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
mod generator;
mod suite;

pub use generator::{generate, generate_giant, reorder_stress, GeneratorSpec, GiantSpec};
pub use suite::{
    public_row_names, public_suite, row_spec, table_row_names, table_suite, BenchmarkCircuit,
};
