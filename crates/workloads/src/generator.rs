//! Seeded random control-logic generator.
//!
//! The generated networks mimic the structure the paper attributes to
//! domino control blocks: highly flattened (shallow AND/OR trees), highly
//! convergent (wide gates near the inputs), with heavily overlapping output
//! cones. Each output is built over a sliding *window* of the inputs, and a
//! fraction of gates is published to a shared pool that later cones may
//! reuse — this bounds every cone's BDD support (keeping exact probability
//! computation cheap) while creating the cone overlap `O(i,j)` that drives
//! the paper's cost function.

use domino_netlist::{NetlistError, Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated control block.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorSpec {
    /// Model name.
    pub name: String,
    /// Primary input count.
    pub n_inputs: usize,
    /// Primary output count.
    pub n_outputs: usize,
    /// Total AND/OR gates to create (inverters come extra).
    pub n_gates: usize,
    /// Maximum gate fanin (≥ 2).
    pub max_fanin: usize,
    /// Probability that a chosen fanin edge is complemented (creates the
    /// internal inverters phase assignment must remove).
    pub not_probability: f64,
    /// Number of inputs visible to each output cone.
    pub window: usize,
    /// Probability that a gate is published to the shared pool (cross-cone
    /// overlap).
    pub share_probability: f64,
    /// How many shared gates each cone may import.
    pub shared_picks: usize,
    /// Latches to insert (0 = combinational). Latch data inputs are tapped
    /// from late gates; latch outputs join the candidate pool.
    pub n_latches: usize,
    /// Scale of the per-cone AND/OR probability skew in `[0, 1]`: 1.0 keeps
    /// the full decoder-like U-shape, 0.0 makes every cone balanced (signal
    /// probabilities hover near ½, leaving phase assignment no leverage —
    /// the Industry 2 profile).
    pub skew: f64,
    /// RNG seed — equal specs generate identical networks.
    pub seed: u64,
}

impl GeneratorSpec {
    /// A reasonable control-logic default: 16-input window, fanin-3 gates,
    /// 15% inverted edges, combinational.
    pub fn control_block(
        name: impl Into<String>,
        n_inputs: usize,
        n_outputs: usize,
        n_gates: usize,
        seed: u64,
    ) -> Self {
        GeneratorSpec {
            name: name.into(),
            n_inputs,
            n_outputs,
            n_gates,
            max_fanin: 3,
            not_probability: 0.15,
            window: 16,
            share_probability: 0.25,
            shared_picks: 2,
            n_latches: 0,
            skew: 1.0,
            seed,
        }
    }
}

/// Generates the network described by `spec`.
///
/// # Errors
///
/// Returns [`NetlistError`] only on internal construction failures (which
/// would indicate a bug — the generator always produces valid networks for
/// sane specs).
///
/// # Panics
///
/// Panics if `n_inputs == 0`, `n_outputs == 0`, or `max_fanin < 2`.
pub fn generate(spec: &GeneratorSpec) -> Result<Network, NetlistError> {
    assert!(spec.n_inputs > 0, "need at least one input");
    assert!(spec.n_outputs > 0, "need at least one output");
    assert!(spec.max_fanin >= 2, "gates need fanin of at least 2");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut net = Network::new(spec.name.clone());

    let inputs: Vec<NodeId> = (0..spec.n_inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect::<Result<_, _>>()?;
    let latches: Vec<NodeId> = (0..spec.n_latches)
        .map(|i| {
            let l = net.add_latch(rng.gen_bool(0.5));
            net.set_node_name(l, format!("q{i}")).expect("fresh id");
            l
        })
        .collect();

    // Shared inverter cache so complement edges reuse one NOT per node.
    let mut inverters: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    let mut shared: Vec<NodeId> = Vec::new();
    let mut output_drivers: Vec<NodeId> = Vec::new();
    let mut latch_candidates: Vec<NodeId> = Vec::new();

    let window = spec.window.clamp(2, spec.n_inputs);
    let gates_per_cone = (spec.n_gates / spec.n_outputs).max(1);
    let mut remainder = spec.n_gates.saturating_sub(gates_per_cone * spec.n_outputs);

    for o in 0..spec.n_outputs {
        // Window of inputs: a contiguous band (wrapping) plus a couple of
        // random extras — consecutive outputs overlap heavily.
        let start = if spec.n_inputs > window {
            (o * spec.n_inputs * 2 / (3 * spec.n_outputs).max(1)) % (spec.n_inputs - window + 1)
        } else {
            0
        };
        let mut pool: Vec<NodeId> = inputs[start..start + window].to_vec();
        for _ in 0..2 {
            pool.push(inputs[rng.gen_range(0..spec.n_inputs)]);
        }
        if !latches.is_empty() {
            pool.push(latches[rng.gen_range(0..latches.len())]);
        }
        for _ in 0..spec.shared_picks.min(shared.len()) {
            pool.push(shared[rng.gen_range(0..shared.len())]);
        }

        let mut cone_gates = gates_per_cone;
        if remainder > 0 {
            cone_gates += 1;
            remainder -= 1;
        }
        // Per-cone gate-kind bias, U-shaped: control logic is full of
        // decoder-like AND-heavy cones (output probability near 0) and
        // flag/enable-like OR-heavy cones (near 1); balanced cones are the
        // minority. Skewed cone probabilities are what make phase choice
        // matter.
        let raw_bias = if rng.gen_bool(0.45) {
            0.86 + 0.12 * rng.gen::<f64>()
        } else if rng.gen_bool(0.6) {
            0.02 + 0.12 * rng.gen::<f64>()
        } else {
            0.3 + 0.4 * rng.gen::<f64>()
        };
        let or_bias = 0.5 + (raw_bias - 0.5) * spec.skew.clamp(0.0, 1.0);
        let mut top = pool[0];
        for _ in 0..cone_gates {
            let k = rng.gen_range(2..=spec.max_fanin);
            let mut fanins: Vec<NodeId> = Vec::with_capacity(k);
            let mut tries = 0;
            while fanins.len() < k && tries < 32 {
                tries += 1;
                // Recent-biased pick: deeper, narrower cones.
                let idx = if rng.gen_bool(0.75) && pool.len() > 4 {
                    rng.gen_range(pool.len() - 4..pool.len())
                } else {
                    rng.gen_range(0..pool.len())
                };
                let mut cand = pool[idx];
                if rng.gen_bool(spec.not_probability) {
                    cand = match inverters.get(&cand) {
                        Some(&inv) => inv,
                        None => {
                            let inv = net.add_not(cand)?;
                            inverters.insert(cand, inv);
                            inv
                        }
                    };
                }
                if !fanins.contains(&cand) {
                    fanins.push(cand);
                }
            }
            if fanins.len() < 2 {
                continue;
            }
            let gate = if rng.gen_bool(or_bias) {
                net.add_or(fanins)?
            } else {
                net.add_and(fanins)?
            };
            pool.push(gate);
            top = gate;
            if rng.gen_bool(spec.share_probability) {
                shared.push(gate);
            }
            if rng.gen_bool(0.2) {
                latch_candidates.push(gate);
            }
        }
        output_drivers.push(top);
    }

    for (o, &driver) in output_drivers.iter().enumerate() {
        // Some outputs come out inverted — realistic synthesis output and
        // the raw material for phase assignment.
        let driver = if rng.gen_bool(spec.not_probability) {
            match inverters.get(&driver) {
                Some(&inv) => inv,
                None => {
                    let inv = net.add_not(driver)?;
                    inverters.insert(driver, inv);
                    inv
                }
            }
        } else {
            driver
        };
        net.add_output(format!("o{o}"), driver)?;
    }

    for &l in &latches {
        let data = if latch_candidates.is_empty() {
            inputs[rng.gen_range(0..spec.n_inputs)]
        } else {
            latch_candidates[rng.gen_range(0..latch_candidates.len())]
        };
        net.set_latch_data(l, data)?;
    }

    net.validate()?;
    Ok(net)
}

/// Generates the reorder-stress circuit: `f = Σᵢ aᵢ·bᵢ` over `pairs`
/// disjoint input pairs, with all `a` inputs declared before all `b`
/// inputs.
///
/// Under the declared input order the BDD of `f` is exponential in
/// `pairs` (every `aᵢ` must be remembered until its `bᵢ` arrives), while
/// the interleaved order `a₀ b₀ a₁ b₁ …` is linear — the canonical
/// worst case for a static variable order and the fixture the dynamic
/// reordering (sifting) perf gate is built on.
///
/// # Errors
///
/// Returns [`NetlistError`] only on internal construction failures.
///
/// # Panics
///
/// Panics if `pairs == 0`.
pub fn reorder_stress(pairs: usize) -> Result<Network, NetlistError> {
    assert!(pairs > 0, "need at least one pair");
    let mut net = Network::new(format!("reorder_stress_{pairs}"));
    let a: Vec<NodeId> = (0..pairs)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..pairs)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let products: Vec<NodeId> = (0..pairs)
        .map(|i| net.add_and([a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let f = if pairs == 1 {
        products[0]
    } else {
        net.add_or(products)?
    };
    net.add_output("f", f)?;
    net.validate()?;
    Ok(net)
}

/// Parameters of a generated *giant* circuit: a grid of deep, pipelined
/// output cones sized by explicit depth/fanout knobs rather than a flat
/// gate budget. This is the scale fixture behind the warm-restart perf
/// gate — big enough that rebuilding its BDD kernel is measurable, yet
/// windowed so every cone's BDD support (and thus exact probability
/// computation) stays bounded no matter how large the circuit grows.
#[derive(Debug, Clone, PartialEq)]
pub struct GiantSpec {
    /// Model name.
    pub name: String,
    /// Primary input count.
    pub n_inputs: usize,
    /// Primary output count — one deep cone per output.
    pub n_outputs: usize,
    /// Logic layers per cone (circuit depth).
    pub depth: usize,
    /// Gates created per layer per cone (layer width / fanout pressure).
    pub fanout: usize,
    /// Maximum gate fanin (≥ 2).
    pub max_fanin: usize,
    /// Inputs visible to each cone — bounds the BDD support exactly as
    /// [`GeneratorSpec::window`] does.
    pub window: usize,
    /// Probability that a chosen fanin edge is complemented.
    pub not_probability: f64,
    /// Sequential mix: pipeline a latch into each cone every this many
    /// layers (`0` = purely combinational).
    pub latch_every: usize,
    /// RNG seed — equal specs generate identical networks.
    pub seed: u64,
}

impl GiantSpec {
    /// A pipelined giant-circuit default: fanin-3 gates over a 12-input
    /// window, 15% inverted edges, a latch every 4 layers.
    pub fn giant(
        name: impl Into<String>,
        n_inputs: usize,
        n_outputs: usize,
        depth: usize,
        fanout: usize,
        seed: u64,
    ) -> Self {
        GiantSpec {
            name: name.into(),
            n_inputs,
            n_outputs,
            depth,
            fanout,
            max_fanin: 3,
            window: 12,
            not_probability: 0.15,
            latch_every: 4,
            seed,
        }
    }

    /// Total gates the spec asks for (`n_outputs × depth × fanout`) —
    /// useful for sizing expectations in benches and tests.
    pub fn gate_budget(&self) -> usize {
        self.n_outputs * self.depth * self.fanout
    }
}

/// Generates the giant circuit described by `spec`: `n_outputs` deep
/// cones, each a `depth`-layer feed-forward pipeline of `fanout` gates
/// per layer over a sliding input window, with latches inserted every
/// `latch_every` layers.
///
/// # Errors
///
/// Returns [`NetlistError`] only on internal construction failures.
///
/// # Panics
///
/// Panics if `n_inputs == 0`, `n_outputs == 0`, `depth == 0`,
/// `fanout == 0`, or `max_fanin < 2`.
pub fn generate_giant(spec: &GiantSpec) -> Result<Network, NetlistError> {
    assert!(spec.n_inputs > 0, "need at least one input");
    assert!(spec.n_outputs > 0, "need at least one output");
    assert!(spec.depth > 0, "need at least one layer");
    assert!(spec.fanout > 0, "need at least one gate per layer");
    assert!(spec.max_fanin >= 2, "gates need fanin of at least 2");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut net = Network::new(spec.name.clone());

    let inputs: Vec<NodeId> = (0..spec.n_inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect::<Result<_, _>>()?;
    let mut inverters: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    let mut n_latches = 0usize;
    let window = spec.window.clamp(2, spec.n_inputs);

    for o in 0..spec.n_outputs {
        // Consecutive cones slide their window across the inputs, wrapping
        // at the end — neighbours overlap, distant cones are disjoint.
        let start = if spec.n_inputs > window {
            (o * window / 2) % (spec.n_inputs - window + 1)
        } else {
            0
        };
        let mut pool: Vec<NodeId> = inputs[start..start + window].to_vec();
        let mut top = pool[0];
        for layer in 0..spec.depth {
            let layer_base = pool.len();
            for _ in 0..spec.fanout {
                let k = rng.gen_range(2..=spec.max_fanin);
                let mut fanins: Vec<NodeId> = Vec::with_capacity(k);
                let mut tries = 0;
                while fanins.len() < k && tries < 32 {
                    tries += 1;
                    // Bias toward the previous layer: real pipelines are
                    // mostly layer-to-layer with occasional skip edges.
                    let idx = if rng.gen_bool(0.8) && layer_base > spec.fanout {
                        rng.gen_range(layer_base.saturating_sub(spec.fanout * 2)..layer_base)
                    } else {
                        rng.gen_range(0..layer_base)
                    };
                    let mut cand = pool[idx];
                    if rng.gen_bool(spec.not_probability) {
                        cand = match inverters.get(&cand) {
                            Some(&inv) => inv,
                            None => {
                                let inv = net.add_not(cand)?;
                                inverters.insert(cand, inv);
                                inv
                            }
                        };
                    }
                    if !fanins.contains(&cand) {
                        fanins.push(cand);
                    }
                }
                if fanins.len() < 2 {
                    continue;
                }
                let gate = if rng.gen_bool(0.5) {
                    net.add_or(fanins)?
                } else {
                    net.add_and(fanins)?
                };
                pool.push(gate);
                top = gate;
            }
            // Sequential mix: feed the layer's top through a pipeline
            // latch whose output joins the pool for later layers.
            if spec.latch_every > 0 && (layer + 1) % spec.latch_every == 0 {
                let latch = net.add_latch(rng.gen_bool(0.5));
                net.set_node_name(latch, format!("p{n_latches}"))
                    .expect("fresh id");
                net.set_latch_data(latch, top)?;
                n_latches += 1;
                pool.push(latch);
            }
        }
        net.add_output(format!("o{o}"), top)?;
    }

    net.validate()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::NetworkStats;

    #[test]
    fn deterministic_for_seed() {
        let spec = GeneratorSpec::control_block("t", 20, 8, 60, 42);
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a, b);
        let c = generate(&GeneratorSpec {
            seed: 43,
            ..spec.clone()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_interface_counts() {
        let spec = GeneratorSpec::control_block("t", 31, 3, 50, 7);
        let net = generate(&spec).unwrap();
        assert_eq!(net.inputs().len(), 31);
        assert_eq!(net.outputs().len(), 3);
        net.validate().unwrap();
        let stats = NetworkStats::of(&net);
        assert!(stats.ands + stats.ors >= 40, "{stats}");
        assert!(stats.nots > 0, "needs inverters for phase assignment");
    }

    #[test]
    fn sequential_generation() {
        let spec = GeneratorSpec {
            n_latches: 6,
            ..GeneratorSpec::control_block("seq", 16, 4, 60, 3)
        };
        let net = generate(&spec).unwrap();
        assert!(net.is_sequential());
        assert_eq!(net.latches().len(), 6);
        net.validate().unwrap();
    }

    #[test]
    fn output_cones_overlap() {
        // Consecutive outputs share window inputs: the overlap the cost
        // function needs.
        let spec = GeneratorSpec::control_block("t", 24, 6, 90, 11);
        let net = generate(&spec).unwrap();
        let cones: Vec<std::collections::HashSet<_>> = net
            .outputs()
            .iter()
            .map(|o| net.transitive_fanin(o.driver))
            .collect();
        let mut overlapping_pairs = 0;
        for i in 0..cones.len() {
            for j in i + 1..cones.len() {
                if cones[i].intersection(&cones[j]).next().is_some() {
                    overlapping_pairs += 1;
                }
            }
        }
        assert!(
            overlapping_pairs >= 3,
            "{overlapping_pairs} overlapping pairs"
        );
    }

    #[test]
    fn reorder_stress_shape() {
        let net = reorder_stress(6).unwrap();
        assert_eq!(net.inputs().len(), 12);
        assert_eq!(net.outputs().len(), 1);
        let stats = NetworkStats::of(&net);
        assert_eq!(stats.ands, 6);
        assert_eq!(stats.ors, 1);
        // Deterministic: no RNG involved at all.
        assert_eq!(net, reorder_stress(6).unwrap());
    }

    #[test]
    fn windowed_support_stays_bounded() {
        let spec = GeneratorSpec::control_block("t", 120, 20, 400, 5);
        let net = generate(&spec).unwrap();
        for o in net.outputs() {
            let support = net.cone_inputs(o.driver).len();
            assert!(support <= 70, "cone of {} spans {support} inputs", o.name);
        }
    }

    #[test]
    fn giant_deterministic_for_seed() {
        let spec = GiantSpec::giant("g", 48, 12, 8, 2, 21);
        let a = generate_giant(&spec).unwrap();
        let b = generate_giant(&spec).unwrap();
        assert_eq!(a, b);
        let c = generate_giant(&GiantSpec {
            seed: 22,
            ..spec.clone()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn giant_hits_its_depth_and_gate_budget() {
        let spec = GiantSpec::giant("g", 64, 16, 10, 2, 9);
        let net = generate_giant(&spec).unwrap();
        assert_eq!(net.inputs().len(), 64);
        assert_eq!(net.outputs().len(), 16);
        let stats = NetworkStats::of(&net);
        // A few layer slots can fail the 32-try fanin draw; the vast
        // majority land, so the gate count tracks the budget.
        assert!(
            stats.ands + stats.ors >= spec.gate_budget() * 9 / 10,
            "{stats} vs budget {}",
            spec.gate_budget()
        );
        assert!(
            stats.depth as usize >= spec.depth,
            "depth {} too shallow",
            stats.depth
        );
    }

    #[test]
    fn giant_sequential_mix_pipelines_latches() {
        let spec = GiantSpec::giant("g", 48, 8, 12, 2, 5);
        let net = generate_giant(&spec).unwrap();
        assert!(net.is_sequential());
        // depth 12 with a latch every 4 layers = 3 latches per cone.
        assert_eq!(net.latches().len(), 8 * 3);
        net.validate().unwrap();

        let comb = generate_giant(&GiantSpec {
            latch_every: 0,
            ..spec
        })
        .unwrap();
        assert!(!comb.is_sequential());
    }

    #[test]
    fn giant_support_stays_windowed() {
        // The whole point: support per cone is bounded by the window (plus
        // its pipeline latches), no matter how many gates the spec asks for.
        let spec = GiantSpec::giant("g", 256, 64, 16, 3, 13);
        let net = generate_giant(&spec).unwrap();
        for o in net.outputs() {
            let support = net.cone_inputs(o.driver).len();
            assert!(
                support <= spec.window,
                "cone of {} spans {support} primary inputs",
                o.name
            );
        }
    }
}
