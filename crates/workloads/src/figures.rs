//! The exact circuits and graphs behind the paper's figures.

use domino_netlist::{NetlistError, Network};
use domino_sgraph::DiGraph;

/// Figure 3's running example (§3): a shared subnetwork
/// `common = (a+b) + !(c·d)` drives `f = !common` (negative phase in the
/// initial synthesis) and `g = common` (positive phase). The internal
/// inverter on `c·d` is the one phase assignment must push to the
/// boundary.
///
/// # Errors
///
/// Construction never fails for this fixed netlist; the `Result` mirrors
/// the builder API.
pub fn fig3_network() -> Result<Network, NetlistError> {
    let mut net = Network::new("fig3");
    let a = net.add_input("a")?;
    let b = net.add_input("b")?;
    let c = net.add_input("c")?;
    let d = net.add_input("d")?;
    let aob = net.add_or([a, b])?;
    let cad = net.add_and([c, d])?;
    let ncad = net.add_not(cad)?;
    let common = net.add_or([aob, ncad])?;
    let f = net.add_not(common)?;
    net.add_output("f", f)?;
    net.add_output("g", common)?;
    net.validate()?;
    Ok(net)
}

/// Figure 5's two-output example: `f = (a+b)+(c·d)` and
/// `g = !(a+b) + !(c·d)`. With all primary input probabilities 0.9, the
/// phase assignment (f−, g+) has 75% fewer weighted transitions than
/// (f+, g−) — reproduced exactly by the unit power model.
///
/// # Errors
///
/// Construction never fails for this fixed netlist.
pub fn fig5_network() -> Result<Network, NetlistError> {
    let mut net = Network::new("fig5");
    let a = net.add_input("a")?;
    let b = net.add_input("b")?;
    let c = net.add_input("c")?;
    let d = net.add_input("d")?;
    let aob = net.add_or([a, b])?;
    let cad = net.add_and([c, d])?;
    let f = net.add_or([aob, cad])?;
    let naob = net.add_not(aob)?;
    let ncad = net.add_not(cad)?;
    let g = net.add_or([naob, ncad])?;
    net.add_output("f", f)?;
    net.add_output("g", g)?;
    net.validate()?;
    Ok(net)
}

/// Figure 7's sequential partitioning example: a feedback structure where
/// cutting the *right* flip-flop yields a combinational block with fewer
/// pseudo primary inputs. Three latches: `q0` feeds wide logic, `q1`/`q2`
/// form the feedback loop through narrow logic.
///
/// # Errors
///
/// Construction never fails for this fixed netlist.
pub fn fig7_network() -> Result<Network, NetlistError> {
    let mut net = Network::new("fig7");
    let a = net.add_input("a")?;
    let b = net.add_input("b")?;
    let c = net.add_input("c")?;
    let q0 = net.add_latch(false);
    let q1 = net.add_latch(false);
    let q2 = net.add_latch(true);
    net.set_node_name(q0, "q0")?;
    net.set_node_name(q1, "q1")?;
    net.set_node_name(q2, "q2")?;
    // q0's next state depends on everything (wide); q1/q2 loop narrowly.
    let wide = net.add_and([a, b, c])?;
    let d0 = net.add_or([wide, q1])?;
    let d1 = net.add_and([q2, a])?;
    let d2 = net.add_or([q1, b])?;
    net.set_latch_data(q0, d0)?;
    net.set_latch_data(q1, d1)?;
    net.set_latch_data(q2, d2)?;
    let out = net.add_or([q0, q2])?;
    net.add_output("o", out)?;
    net.validate()?;
    Ok(net)
}

/// Figure 9's s-graph: vertices A, B, E (indices 0, 1, 4) and C, D
/// (indices 2, 3) forming a strongly connected bipartite structure. The
/// classical reductions cannot touch it; the symmetry transformation merges
/// it into supervertices ABE (weight 3) and CD (weight 2).
pub fn fig9_sgraph() -> DiGraph {
    let mut g = DiGraph::new(5);
    for abe in [0usize, 1, 4] {
        for cd in [2usize, 3] {
            g.add_edge(abe, cd);
            g.add_edge(cd, abe);
        }
    }
    g
}

/// Figure 10's three-gate circuit over inputs `x1..x5`: gate `P` consumes
/// `x1, x2, x3`; gate `Q` consumes `x3, x4`; gate `R` consumes `Q` and
/// `x5`. BDDs for all three circuit nodes are built under three variable
/// orders (reverse-topological, topological, "disturbed"); the shared node
/// counts reproduce the figure's ranking.
///
/// Returns the network; inputs are declared in index order so BDD variable
/// `i` is `x(i+1)`.
///
/// # Errors
///
/// Construction never fails for this fixed netlist.
pub fn fig10_network() -> Result<Network, NetlistError> {
    let mut net = Network::new("fig10");
    let x1 = net.add_input("x1")?;
    let x2 = net.add_input("x2")?;
    let x3 = net.add_input("x3")?;
    let x4 = net.add_input("x4")?;
    let x5 = net.add_input("x5")?;
    let p = net.add_and([x1, x2, x3])?;
    let q = net.add_and([x3, x4])?;
    let r = net.add_or([q, x5])?;
    net.add_output("P", p)?;
    net.add_output("Q", q)?;
    net.add_output("R", r)?;
    net.validate()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_functions() {
        let net = fig3_network().unwrap();
        // f = !((a+b) + !(c·d)), g = (a+b) + !(c·d)
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
            let common = (a || b) || !(c && d);
            assert_eq!(net.eval_comb(&v).unwrap(), vec![!common, common]);
        }
    }

    #[test]
    fn fig5_functions() {
        let net = fig5_network().unwrap();
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
            let f = (a || b) || (c && d);
            let g = !(a || b) || !(c && d);
            assert_eq!(net.eval_comb(&v).unwrap(), vec![f, g]);
        }
    }

    #[test]
    fn fig7_is_sequential_with_feedback() {
        let net = fig7_network().unwrap();
        assert_eq!(net.latches().len(), 3);
        let g = domino_sgraph::extract_sgraph(&net);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn fig9_graph_shape() {
        let g = fig9_sgraph();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 12);
        // Strongly connected: one SCC of 5.
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 5);
    }

    #[test]
    fn fig10_functions() {
        let net = fig10_network().unwrap();
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits & (1 << i) != 0).collect();
            let p = v[0] && v[1] && v[2];
            let q = v[2] && v[3];
            let r = q || v[4];
            assert_eq!(net.eval_comb(&v).unwrap(), vec![p, q, r]);
        }
    }
}
