//! Offline drop-in for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal wall-clock harness with the same surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs
//! one warm-up iteration and then `sample_size` timed samples, reporting
//! mean/min/max to stdout. There is no statistical analysis, HTML report or
//! `target/criterion` history — numbers are indicative, not rigorous.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: Option<usize>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.unwrap_or(10);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size.unwrap_or(10);
        run_benchmark(None, &id.into(), sample_size, f);
        self
    }

    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = Some(n.max(1));
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `iterations` calls of `f` (results are black-boxed).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(group: Option<&str>, id: &BenchmarkId, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    // One warm-up iteration, then `sample_size` one-iteration samples.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 1,
    };
    f(&mut bencher);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 1,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{full_name:<60} mean {:>12} min {:>12} max {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let data = vec![1u64, 2, 3];
        group.sample_size(2).bench_with_input(
            BenchmarkId::new("sum", data.len()),
            &data,
            |b, d| {
                b.iter(|| d.iter().sum::<u64>());
            },
        );
        group.finish();
    }
}
