//! Offline drop-in subset of the `signal-hook` 0.3 API.
//!
//! The build environment has no registry access (see the other
//! `crates/compat` members), so this crate re-implements the one surface
//! the daemons need: [`flag::register`] — "set this `AtomicBool` when the
//! process receives that signal" — plus the [`consts`] and a
//! [`low_level::raise`] helper for tests.
//!
//! # Design
//!
//! A signal handler may only touch async-signal-safe state, so the
//! `extern "C"` handler does exactly one thing: store `true` into a
//! per-signal static `AtomicBool` (atomic stores are async-signal-safe).
//! A lazily-started watcher thread polls those statics every few
//! milliseconds and propagates them to the registered `Arc<AtomicBool>`
//! flags, which live behind an ordinary mutex the handler never takes.
//! The extra propagation latency (bounded by one poll interval) is
//! irrelevant for the graceful-drain use case.
//!
//! On non-Unix targets `register` succeeds but the flag never fires, and
//! [`low_level::raise`] reports `Unsupported` — callers degrade to
//! "no signal handling" instead of failing to build.

#![warn(missing_docs)]
// The whole point of this crate is the one unavoidable unsafe surface
// (installing a C signal handler); everything above it is safe code.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Signal numbers, as `signal-hook` exposes them.
pub mod consts {
    /// Termination request (`kill <pid>`): the graceful-drain signal.
    pub const SIGTERM: i32 = 15;
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// Terminal hangup.
    pub const SIGHUP: i32 = 1;
}

/// The signals this subset supports registering for.
const SUPPORTED: [i32; 3] = [consts::SIGHUP, consts::SIGINT, consts::SIGTERM];

/// One pending-delivery latch per supported signal, written by the C
/// handler and drained by the watcher thread.
static PENDING: [AtomicBool; SUPPORTED.len()] = [
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
];

fn slot(signal: i32) -> Option<usize> {
    SUPPORTED.iter().position(|&s| s == signal)
}

/// The registered `(signal, flag)` pairs the watcher propagates into.
static REGISTRY: Mutex<Vec<(i32, Arc<AtomicBool>)>> = Mutex::new(Vec::new());

/// Identifier returned by [`flag::register`] (kept for API shape; this
/// subset has no `unregister`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigId(usize);

#[cfg(unix)]
mod sys {
    use super::{slot, PENDING};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    /// `SIG_ERR` as glibc/musl define it.
    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_signal(signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        if let Some(i) = slot(signum) {
            PENDING[i].store(true, Ordering::SeqCst);
        }
    }

    pub fn install(signum: i32) -> std::io::Result<()> {
        let previous = unsafe { signal(signum, on_signal as extern "C" fn(i32) as usize) };
        if previous == SIG_ERR {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn send_self(signum: i32) -> std::io::Result<()> {
        if unsafe { raise(signum) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install(_signum: i32) -> std::io::Result<()> {
        Ok(()) // registered but never fires
    }

    pub fn send_self(_signum: i32) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "raise() is unsupported on this platform",
        ))
    }
}

/// Starts (once) the thread that moves pending-latch state into the
/// registered flags.
fn ensure_watcher() {
    static WATCHER: OnceLock<()> = OnceLock::new();
    WATCHER.get_or_init(|| {
        std::thread::Builder::new()
            .name("signal-watcher".into())
            .spawn(|| loop {
                for (i, &signum) in SUPPORTED.iter().enumerate() {
                    if PENDING[i].swap(false, Ordering::SeqCst) {
                        let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
                        for (wanted, flag) in registry.iter() {
                            if *wanted == signum {
                                flag.store(true, Ordering::SeqCst);
                            }
                        }
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            })
            .expect("spawn signal watcher");
    });
}

/// The `signal_hook::flag` module subset.
pub mod flag {
    use super::*;

    /// Arranges for `flag` to be set to `true` when the process receives
    /// `signal`. Multiple flags may be registered for one signal; all are
    /// set. Delivery latency is bounded by the watcher's poll interval
    /// (~10ms).
    ///
    /// # Errors
    ///
    /// `io::Error` when the signal is outside the supported subset or the
    /// handler cannot be installed.
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> std::io::Result<SigId> {
        if slot(signal).is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unsupported signal {signal} (subset: HUP/INT/TERM)"),
            ));
        }
        sys::install(signal)?;
        ensure_watcher();
        let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        registry.push((signal, flag));
        Ok(SigId(registry.len() - 1))
    }
}

/// The `signal_hook::low_level` module subset.
pub mod low_level {
    /// Sends `signal` to the current process (test helper; `raise(3)`).
    ///
    /// # Errors
    ///
    /// The OS error when delivery fails, or `Unsupported` off-Unix.
    pub fn raise(signal: i32) -> std::io::Result<()> {
        super::sys::send_self(signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn registered_flag_is_set_after_raise() {
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGHUP, Arc::clone(&flag)).expect("register");
        assert!(!flag.load(Ordering::SeqCst));

        low_level::raise(consts::SIGHUP).expect("raise");
        let deadline = Instant::now() + Duration::from_secs(2);
        while !flag.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "flag never set");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn unsupported_signal_is_rejected() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(flag::register(64, flag).is_err());
    }
}
