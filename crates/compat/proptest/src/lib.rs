//! Offline drop-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal property-testing harness: deterministic random generation through
//! a [`strategy::Strategy`] trait with `prop_map`, tuple/range/collection
//! strategies, [`arbitrary::any`], the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros and a
//! [`test_runner::ProptestConfig`] with a case count.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated values unreduced), no persistence of failing seeds, and the
//! generation stream is this crate's own xoshiro-based [`test_runner::TestRng`].

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic generation RNG.
pub mod test_runner {
    /// Subset of proptest's config: just the number of cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG feeding all strategies (xoshiro256++/SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The fixed-seed RNG used by the [`crate::proptest!`] macro, so
        /// every test run explores the same case sequence.
        pub fn deterministic() -> Self {
            TestRng::from_seed(0x0dd0_5eed_ca5e_c0de)
        }

        /// RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut state = seed;
            TestRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `usize` in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample below 0");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: `generate` directly
    /// produces a value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy; used by [`crate::prop_oneof!`] to unify arms.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }
}

/// [`any`](arbitrary::any) and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u64, u32, u16, u8, usize, i64, i32);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice among strategy arms producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property body (panics; cases are not shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property body (panics; cases are not shrunk).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, arg: Type) {...}`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!(($cfg) [] [$($args)*] $body);
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // All arguments parsed: run the cases.
    (($cfg:expr) [$(($p:ident, $s:expr))*] [] $body:block) => {{
        let __config = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        let __strategies = ($($s,)*);
        for __case in 0..__config.cases {
            let ($($p,)*) = {
                let ($(ref $p,)*) = __strategies;
                ($($crate::strategy::Strategy::generate($p, &mut __rng),)*)
            };
            let _ = __case;
            $body
        }
    }};
    // `name in strategy` argument.
    (($cfg:expr) [$($acc:tt)*] [$name:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_body!(($cfg) [$($acc)* ($name, $strat)] [$($rest)*] $body)
    };
    (($cfg:expr) [$($acc:tt)*] [$name:ident in $strat:expr] $body:block) => {
        $crate::__proptest_body!(($cfg) [$($acc)* ($name, $strat)] [] $body)
    };
    // `name: Type` argument (uses `any::<Type>()`).
    (($cfg:expr) [$($acc:tt)*] [$name:ident : $ty:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_body!(($cfg) [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] [$($rest)*] $body)
    };
    (($cfg:expr) [$($acc:tt)*] [$name:ident : $ty:ty] $body:block) => {
        $crate::__proptest_body!(($cfg) [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] [] $body)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![
            (0usize..4).prop_map(|x| x * 2),
            (10usize..14).prop_map(|x| x + 1),
        ];
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 8 || (11..15).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let s = prop::collection::vec(0usize..10, 2..5);
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_parses_mixed_args(x in 0usize..8, bits: u64, v in prop::collection::vec(0usize..3, 1..4)) {
            prop_assert!(x < 8);
            let _ = bits;
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn macro_single_arg(x in (0usize..5, 1usize..3).prop_map(|(a, b)| a * b)) {
            prop_assert!(x <= 8, "x = {x}");
        }
    }
}
