//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation of the traits and generator it
//! needs: [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms and runs, which
//! is all the workloads generator and vector simulator require. Streams do
//! *not* match the upstream `rand` crate's `StdRng` (ChaCha12); seeds
//! calibrated here are calibrated against this generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Standard-distribution sampling for the handful of primitive types used.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64 + 1;
                if width == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ over SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2usize..7);
            assert!((2..7).contains(&x));
            let y = rng.gen_range(2usize..=7);
            assert!((2..=7).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
