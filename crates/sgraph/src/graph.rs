//! A small dense directed graph with deterministic iteration order.

use std::collections::BTreeSet;

/// Directed graph on vertices `0..n` with set-based adjacency (parallel
/// edges collapse; self-loops allowed). Iteration order is deterministic
/// (ascending vertex index), which keeps every heuristic in this crate
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    succ: Vec<BTreeSet<usize>>,
    pred: Vec<BTreeSet<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![BTreeSet::new(); n],
            pred: vec![BTreeSet::new(); n],
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of (distinct) edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(BTreeSet::len).sum()
    }

    /// Adds edge `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "edge endpoint out of range"
        );
        self.succ[u].insert(v);
        self.pred[v].insert(u);
    }

    /// `true` if edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ.get(u).is_some_and(|s| s.contains(&v))
    }

    /// Successors of `u`, ascending.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ[u].iter().copied()
    }

    /// Predecessors of `u`, ascending.
    pub fn predecessors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.pred[u].iter().copied()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.succ[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.pred[u].len()
    }

    /// All edges `(u, v)`, lexicographic.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut e = Vec::with_capacity(self.edge_count());
        for (u, succ) in self.succ.iter().enumerate() {
            for &v in succ {
                e.push((u, v));
            }
        }
        e
    }

    /// Removes all edges incident to `u` (the vertex id stays valid but
    /// isolated).
    pub fn isolate(&mut self, u: usize) {
        let out: Vec<usize> = self.succ[u].iter().copied().collect();
        for v in out {
            self.pred[v].remove(&u);
        }
        self.succ[u].clear();
        let inn: Vec<usize> = self.pred[u].iter().copied().collect();
        for v in inn {
            self.succ[v].remove(&u);
        }
        self.pred[u].clear();
    }

    /// The graph restricted to `keep` (edges between kept vertices only;
    /// vertex ids preserved).
    pub fn induced(&self, keep: &BTreeSet<usize>) -> DiGraph {
        let mut g = DiGraph::new(self.vertex_count());
        for &u in keep {
            for &v in &self.succ[u] {
                if keep.contains(&v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// `true` if the graph (restricted to vertices that still have edges or
    /// are listed in `vertices`) contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over all vertices.
        let n = self.vertex_count();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for s in self.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        seen == n
    }

    /// Topological order (ascending-index tie-break).
    ///
    /// Returns `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.vertex_count();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            order.push(v);
            for s in self.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.insert(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order of the condensation. Singleton components without
    /// self-loops are trivially acyclic.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.vertex_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();

        // Iterative Tarjan: (vertex, iterator position over successors).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            let succs: Vec<usize> = self.successors(root).collect();
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            call.push((root, succs, 0));
            while let Some((v, succs, mut pos)) = call.pop() {
                let mut descended = false;
                while pos < succs.len() {
                    let w = succs[pos];
                    pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        let wsuccs: Vec<usize> = self.successors(w).collect();
                        call.push((v, succs, pos));
                        call.push((w, wsuccs, 0));
                        descended = true;
                        break;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                if descended {
                    continue;
                }
                // v finished.
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
                if let Some((parent, _, _)) = call.last() {
                    let parent = *parent;
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_degrees() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 3); // parallel edge collapsed
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn acyclicity() {
        let dag = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(dag.is_acyclic());
        assert_eq!(dag.topo_order(), Some(vec![0, 1, 2, 3]));
        let cyc = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!cyc.is_acyclic());
        assert_eq!(cyc.topo_order(), None);
        let self_loop = DiGraph::from_edges(2, [(0, 0)]);
        assert!(!self_loop.is_acyclic());
    }

    #[test]
    fn isolate_removes_incident_edges() {
        let mut g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 1), (1, 1)]);
        g.isolate(1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_acyclic());
    }

    #[test]
    fn induced_subgraph() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let keep: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let sub = g.induced(&keep);
        assert_eq!(sub.edges(), vec![(0, 1), (1, 2)]);
        assert!(sub.is_acyclic());
    }

    #[test]
    fn sccs_of_two_cycles_and_bridge() {
        // 0↔1 and 2↔3, with a bridge 1→2; plus isolated 4.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let mut comps = g.sccs();
        comps.sort();
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
        assert!(comps.contains(&vec![4]));
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn sccs_long_cycle() {
        let n = 50;
        let g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
        let comps = g.sccs();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }

    #[test]
    fn sccs_dag_all_singletons() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let comps = g.sccs();
        assert_eq!(comps.len(), 4);
        // Reverse topological order of the condensation: 3 first.
        assert_eq!(comps[0], vec![3]);
    }
}
