//! Applying an MFVS cut to a sequential network (paper Figure 7).
//!
//! Cutting the latches of a feedback vertex set turns the latch dependency
//! structure into a DAG: cut latches behave like fresh primary inputs
//! (typically carrying probability ½), while the remaining latches can be
//! evaluated in topological order — each one's steady-state probability is
//! the probability of its data input.

use std::collections::BTreeSet;

use domino_netlist::{Network, NodeId};

use crate::extract::extract_sgraph;
use crate::mfvs::{mfvs, MfvsConfig, MfvsResult};

/// A sequential partition: which latches are cut, and the evaluation
/// schedule for the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Latches whose feedback is cut; they act as pseudo primary inputs.
    pub cut: Vec<NodeId>,
    /// The remaining latches in an order where each latch's data cone only
    /// depends on primary inputs, cut latches, and earlier latches of this
    /// list.
    pub schedule: Vec<NodeId>,
    /// The MFVS run that produced the cut.
    pub mfvs: MfvsResult,
}

impl Partition {
    /// Number of pseudo primary inputs the cut introduces — the cost metric
    /// the paper's Figure 7 discusses (a good partition minimizes block
    /// inputs).
    pub fn pseudo_input_count(&self) -> usize {
        self.cut.len()
    }
}

/// Partitions a sequential network by cutting an (approximately minimum)
/// feedback vertex set of its s-graph.
///
/// For a combinational network the partition is trivial (empty cut and
/// schedule).
///
/// # Panics
///
/// Panics only if internal invariants are violated (the reduced graph of a
/// valid network always has a topological order after the cut).
pub fn partition(net: &Network, config: &MfvsConfig) -> Partition {
    let g = extract_sgraph(net);
    let result = mfvs(&g, config);
    let cut_set: BTreeSet<usize> = result.fvs.iter().copied().collect();
    let keep: BTreeSet<usize> = (0..g.vertex_count())
        .filter(|v| !cut_set.contains(v))
        .collect();
    let reduced = g.induced(&keep);
    let order = reduced
        .topo_order()
        .expect("graph minus a feedback vertex set is acyclic");
    let latches = net.latches();
    Partition {
        cut: result.fvs.iter().map(|&v| latches[v]).collect(),
        schedule: order
            .into_iter()
            .filter(|v| keep.contains(v))
            .map(|v| latches[v])
            .collect(),
        mfvs: result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    /// A ring counter of `n` latches with an enable input.
    fn ring(n: usize) -> Network {
        let mut net = Network::new("ring");
        let en = net.add_input("en").unwrap();
        let latches: Vec<NodeId> = (0..n).map(|i| net.add_latch(i == 0)).collect();
        for i in 0..n {
            let prev = latches[(i + n - 1) % n];
            let d = net.add_and([prev, en]).unwrap();
            net.set_latch_data(latches[i], d).unwrap();
        }
        net.add_output("tap", latches[n - 1]).unwrap();
        net
    }

    #[test]
    fn ring_cut_once_rest_scheduled() {
        let net = ring(5);
        let p = partition(&net, &MfvsConfig::default());
        assert_eq!(p.cut.len(), 1);
        assert_eq!(p.schedule.len(), 4);
        assert_eq!(p.pseudo_input_count(), 1);
        // Schedule respects dependencies: each latch's predecessor in the
        // ring is either cut or earlier in the schedule.
        let latches = net.latches().to_vec();
        let pos = |id: NodeId| p.schedule.iter().position(|&x| x == id);
        for (i, &l) in latches.iter().enumerate() {
            if p.cut.contains(&l) {
                continue;
            }
            let prev = latches[(i + latches.len() - 1) % latches.len()];
            if !p.cut.contains(&prev) {
                assert!(pos(prev).unwrap() < pos(l).unwrap());
            }
        }
    }

    #[test]
    fn combinational_network_trivial_partition() {
        let mut net = Network::new("comb");
        let a = net.add_input("a").unwrap();
        let g = net.add_not(a).unwrap();
        net.add_output("f", g).unwrap();
        let p = partition(&net, &MfvsConfig::default());
        assert!(p.cut.is_empty());
        assert!(p.schedule.is_empty());
    }

    #[test]
    fn pipeline_needs_no_cut() {
        // A 3-stage pipeline (no feedback): all latches scheduled, none cut.
        let mut net = Network::new("pipe");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        let q2 = net.add_latch(false);
        net.set_latch_data(q0, a).unwrap();
        let n0 = net.add_not(q0).unwrap();
        net.set_latch_data(q1, n0).unwrap();
        let n1 = net.add_not(q1).unwrap();
        net.set_latch_data(q2, n1).unwrap();
        net.add_output("o", q2).unwrap();
        let p = partition(&net, &MfvsConfig::default());
        assert!(p.cut.is_empty());
        assert_eq!(p.schedule, vec![q0, q1, q2]);
    }
}
