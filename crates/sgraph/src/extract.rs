//! Extracting the s-graph of a sequential network.
//!
//! The s-graph has one vertex per latch (flip-flop); there is an edge
//! `u → v` iff a combinational path leads from latch `u`'s output to latch
//! `v`'s data input. Cutting a feedback vertex set of this graph makes the
//! latch dependency structure acyclic, which is what the signal-probability
//! machinery needs.

use domino_netlist::{Network, NodeKind};

use crate::graph::DiGraph;

/// Builds the s-graph of `net`: vertex `i` is `net.latches()[i]`, and
/// `u → v` iff latch `u`'s output reaches latch `v`'s data input through
/// combinational logic (including the direct `Q → D` wire).
///
/// Unconnected latches contribute no incoming edges.
pub fn extract_sgraph(net: &Network) -> DiGraph {
    let latches = net.latches();
    let n = latches.len();
    let mut index_of = vec![usize::MAX; net.len()];
    for (i, &l) in latches.iter().enumerate() {
        index_of[l.index()] = i;
    }
    let mut g = DiGraph::new(n);
    // reaches[node] = bitset of latch indices whose output reaches `node`
    // through combinational edges.
    let words = n.div_ceil(64);
    let mut reaches: Vec<Vec<u64>> = vec![vec![0u64; words]; net.len()];
    for id in net.topo_order() {
        let node = net.node(id);
        if matches!(node.kind, NodeKind::Latch { .. }) {
            let i = index_of[id.index()];
            reaches[id.index()][i / 64] |= 1 << (i % 64);
            continue;
        }
        let fanins: Vec<usize> = node.comb_fanins().iter().map(|f| f.index()).collect();
        for f in fanins {
            // Combinational fanins precede the node in arena order.
            let (lo, hi) = reaches.split_at_mut(id.index());
            for (w, src) in hi[0].iter_mut().zip(lo[f].iter()) {
                *w |= *src;
            }
        }
    }
    for (v, &latch) in latches.iter().enumerate() {
        let Some(&data) = net.node(latch).fanins.first() else {
            continue;
        };
        let set = &reaches[data.index()];
        for u in 0..n {
            if set[u / 64] & (1 << (u % 64)) != 0 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    #[test]
    fn shift_register_is_a_path() {
        // q0 -> q1 -> q2, no feedback.
        let mut net = Network::new("shift");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        let q2 = net.add_latch(false);
        net.set_latch_data(q0, a).unwrap();
        net.set_latch_data(q1, q0).unwrap();
        net.set_latch_data(q2, q1).unwrap();
        net.add_output("o", q2).unwrap();
        let g = extract_sgraph(&net);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2)]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn self_feedback_is_a_self_loop() {
        let mut net = Network::new("loop");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let g1 = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, g1).unwrap();
        net.add_output("o", q).unwrap();
        let g = extract_sgraph(&net);
        assert_eq!(g.edges(), vec![(0, 0)]);
    }

    #[test]
    fn cross_coupled_latches() {
        // q0' = f(q1), q1' = f(q0): a 2-cycle.
        let mut net = Network::new("cross");
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(true);
        let n0 = net.add_not(q1).unwrap();
        let n1 = net.add_not(q0).unwrap();
        net.set_latch_data(q0, n0).unwrap();
        net.set_latch_data(q1, n1).unwrap();
        net.add_output("o", q0).unwrap();
        let g = extract_sgraph(&net);
        assert_eq!(g.edges(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn deep_combinational_path_detected() {
        // q0 feeds q1 through three levels of logic.
        let mut net = Network::new("deep");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        let x = net.add_and([q0, a]).unwrap();
        let y = net.add_not(x).unwrap();
        let z = net.add_or([y, a]).unwrap();
        net.set_latch_data(q1, z).unwrap();
        net.set_latch_data(q0, a).unwrap();
        net.add_output("o", q1).unwrap();
        let g = extract_sgraph(&net);
        assert_eq!(g.edges(), vec![(0, 1)]);
    }

    #[test]
    fn combinational_network_gives_empty_graph() {
        let mut net = Network::new("comb");
        let a = net.add_input("a").unwrap();
        let n = net.add_not(a).unwrap();
        net.add_output("o", n).unwrap();
        let g = extract_sgraph(&net);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
