//! Minimum feedback vertex set heuristics (paper §4.2.1, Figures 8 & 9).
//!
//! The classical CBA reductions iteratively simplify the s-graph; the
//! paper's contribution is a fourth, *symmetry-based* transformation that
//! merges vertices with identical fanins and fanouts into weighted
//! supervertices, unlocking further reduction on the highly duplicated
//! graphs that phase assignment produces.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::graph::DiGraph;

/// Configuration for [`mfvs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfvsConfig {
    /// Enable the paper's symmetry-based supervertex transformation
    /// (Figure 9). Disabling it recovers the plain CBA heuristic — the
    /// ablation baseline.
    pub symmetry: bool,
    /// Process supervertices in descending weight order during bypass
    /// reduction, as the paper prescribes: heavier supervertices are
    /// bypassed first, leaving lighter ones to absorb the resulting
    /// self-loops (and hence land in the cut).
    pub descending_weight: bool,
}

impl Default for MfvsConfig {
    fn default() -> Self {
        MfvsConfig {
            symmetry: true,
            descending_weight: true,
        }
    }
}

/// Counts of reduction-rule applications during one [`mfvs`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Self-loop vertices moved into the FVS (Figure 8b).
    pub self_loops: usize,
    /// Source/sink vertices removed (Figure 8a).
    pub sources_sinks: usize,
    /// Unit-degree vertices bypassed (Figure 8c).
    pub bypasses: usize,
    /// Vertices absorbed into supervertices by the symmetry transformation
    /// (Figure 9).
    pub symmetry_merges: usize,
    /// Irreducible vertices picked greedily.
    pub greedy_picks: usize,
}

/// Result of [`mfvs`]: the feedback vertex set (original vertex ids) and the
/// reduction statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MfvsResult {
    /// Feedback vertex set, ascending.
    pub fvs: Vec<usize>,
    /// How the heuristic got there.
    pub stats: ReductionStats,
}

/// Internal working vertex: a (super)vertex owning one or more original
/// vertices.
struct Work {
    graph: DiGraph,
    /// members[v] = original vertices merged into v; empty = dead.
    members: Vec<Vec<usize>>,
    alive: Vec<bool>,
}

impl Work {
    fn weight(&self, v: usize) -> usize {
        self.members[v].len()
    }

    fn alive_vertices(&self) -> Vec<usize> {
        (0..self.graph.vertex_count())
            .filter(|&v| self.alive[v])
            .collect()
    }

    fn kill(&mut self, v: usize) {
        self.graph.isolate(v);
        self.alive[v] = false;
        self.members[v].clear();
    }
}

/// Computes a feedback vertex set of `g` with the enhanced reduction
/// heuristic. Removing `result.fvs` from `g` always leaves an acyclic graph
/// (asserted by tests and by a debug assertion here).
///
/// The weight of every original vertex is 1; supervertex weights arise only
/// from symmetry merges.
pub fn mfvs(g: &DiGraph, config: &MfvsConfig) -> MfvsResult {
    let n = g.vertex_count();
    let mut work = Work {
        graph: g.clone(),
        members: (0..n).map(|v| vec![v]).collect(),
        alive: vec![true; n],
    };
    let mut stats = ReductionStats::default();
    let mut fvs: Vec<usize> = Vec::new();

    loop {
        let mut changed = true;
        while changed {
            changed = false;
            if config.symmetry {
                changed |= apply_symmetry(&mut work, &mut stats);
            }
            changed |= apply_self_loops(&mut work, &mut stats, &mut fvs);
            changed |= apply_sources_sinks(&mut work, &mut stats);
            changed |= apply_bypass(&mut work, &mut stats, config);
        }
        // Stuck: if anything is left, pick greedily and continue reducing.
        let remaining = work.alive_vertices();
        if remaining.is_empty() {
            break;
        }
        let pick = greedy_pick(&work, &remaining);
        fvs.extend(work.members[pick].iter().copied());
        stats.greedy_picks += 1;
        work.kill(pick);
    }

    fvs.sort_unstable();
    debug_assert!(verify_fvs(g, &fvs), "mfvs produced a non-feedback set");
    MfvsResult { fvs, stats }
}

/// `true` if removing `fvs` from `g` leaves an acyclic graph.
pub fn verify_fvs(g: &DiGraph, fvs: &[usize]) -> bool {
    let drop: BTreeSet<usize> = fvs.iter().copied().collect();
    let keep: BTreeSet<usize> = (0..g.vertex_count())
        .filter(|v| !drop.contains(v))
        .collect();
    g.induced(&keep).is_acyclic()
}

/// Figure 8b: a vertex with a self-loop must be in every FVS.
fn apply_self_loops(work: &mut Work, stats: &mut ReductionStats, fvs: &mut Vec<usize>) -> bool {
    let mut changed = false;
    for v in work.alive_vertices() {
        if work.graph.has_edge(v, v) {
            fvs.extend(work.members[v].iter().copied());
            stats.self_loops += 1;
            work.kill(v);
            changed = true;
        }
    }
    changed
}

/// Figure 8a: sources and sinks lie on no cycle.
fn apply_sources_sinks(work: &mut Work, stats: &mut ReductionStats) -> bool {
    let mut changed = false;
    loop {
        let mut any = false;
        for v in work.alive_vertices() {
            if work.graph.in_degree(v) == 0 || work.graph.out_degree(v) == 0 {
                stats.sources_sinks += 1;
                work.kill(v);
                any = true;
            }
        }
        if !any {
            break;
        }
        changed = true;
    }
    changed
}

/// Figure 8c: a vertex with in-degree 1 or out-degree 1 can be bypassed —
/// every cycle through it also passes through its unique neighbour. The
/// paper's modification: process candidates in *descending weight* order, so
/// heavy supervertices are bypassed (survive) and light ones take the
/// resulting self-loops.
fn apply_bypass(work: &mut Work, stats: &mut ReductionStats, config: &MfvsConfig) -> bool {
    let mut candidates: Vec<usize> = work
        .alive_vertices()
        .into_iter()
        .filter(|&v| {
            !work.graph.has_edge(v, v)
                && (work.graph.in_degree(v) == 1 || work.graph.out_degree(v) == 1)
        })
        .collect();
    if config.descending_weight {
        candidates.sort_by(|&a, &b| work.weight(b).cmp(&work.weight(a)).then(a.cmp(&b)));
    }
    let Some(&v) = candidates.first() else {
        return false;
    };
    // Reconnect preds × succs, then drop v. Bypassing does not put v in the
    // cut: cycles through v persist through the new edges. Its members are
    // guaranteed cycle-free only if v never reappears; since every cycle
    // through v maps to a cycle through the new edges, removing the eventual
    // FVS breaks those too, and v (degree-1 side) cannot itself close a
    // cycle that avoids its unique neighbour.
    let preds: Vec<usize> = work.graph.predecessors(v).collect();
    let succs: Vec<usize> = work.graph.successors(v).collect();
    work.graph.isolate(v);
    work.alive[v] = false;
    // Members of a bypassed vertex are safe: mark dead without entering FVS.
    work.members[v].clear();
    for &p in &preds {
        for &s in &succs {
            work.graph.add_edge(p, s);
        }
    }
    stats.bypasses += 1;
    true
}

/// Figure 9: merge alive vertices with identical fanin sets and identical
/// fanout sets into a weighted supervertex.
fn apply_symmetry(work: &mut Work, stats: &mut ReductionStats) -> bool {
    let mut groups: HashMap<(Vec<usize>, Vec<usize>), Vec<usize>> = HashMap::new();
    for v in work.alive_vertices() {
        let preds: Vec<usize> = work.graph.predecessors(v).collect();
        let succs: Vec<usize> = work.graph.successors(v).collect();
        groups.entry((preds, succs)).or_default().push(v);
    }
    let mut changed = false;
    let mut merge_groups: Vec<Vec<usize>> = groups
        .into_values()
        .filter(|members| members.len() > 1)
        .collect();
    merge_groups.sort(); // deterministic
    for group in merge_groups {
        // Skip degenerate all-isolated groups.
        let rep = group[0];
        if work.graph.in_degree(rep) == 0 && work.graph.out_degree(rep) == 0 {
            continue;
        }
        for &v in &group[1..] {
            let members = std::mem::take(&mut work.members[v]);
            work.members[rep].extend(members);
            work.graph.isolate(v);
            work.alive[v] = false;
            stats.symmetry_merges += 1;
        }
        changed = true;
    }
    changed
}

/// Greedy rule for irreducible graphs: maximize the cycle-breaking potential
/// per unit of weight, `in·out / weight`; ties prefer *lighter* vertices
/// (fewer flip-flops cut), then lower index.
fn greedy_pick(work: &Work, remaining: &[usize]) -> usize {
    *remaining
        .iter()
        .max_by(|&&a, &&b| {
            let score = |v: usize| {
                (work.graph.in_degree(v) * work.graph.out_degree(v)) as f64 / work.weight(v) as f64
            };
            score(a)
                .partial_cmp(&score(b))
                .expect("scores are finite")
                .then(work.weight(b).cmp(&work.weight(a)))
                .then(b.cmp(&a))
        })
        .expect("remaining is non-empty")
}

/// Exact minimum FVS by exhaustive subset search over the vertices that lie
/// in non-trivial strongly connected components — exponential, for graphs of
/// up to 20 such vertices (validation and small benchmarks only).
///
/// # Panics
///
/// Panics if more than 20 vertices lie in non-trivial SCCs.
pub fn exact_mfvs(g: &DiGraph) -> Vec<usize> {
    // Only vertices inside non-trivial SCCs can be needed in a minimum FVS.
    let mut interesting: Vec<usize> = g
        .sccs()
        .into_iter()
        .filter(|c| c.len() > 1 || g.has_edge(c[0], c[0]))
        .flatten()
        .collect();
    interesting.sort_unstable();
    let m = interesting.len();
    assert!(
        m <= 20,
        "exact_mfvs is exponential; use mfvs() for large graphs"
    );
    if m == 0 {
        return Vec::new();
    }
    let mut best: Option<Vec<usize>> = None;
    for mask in 0u32..(1u32 << m) {
        let size = mask.count_ones() as usize;
        if best.as_ref().is_some_and(|b| size >= b.len()) {
            continue;
        }
        let candidate: Vec<usize> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| interesting[i])
            .collect();
        if verify_fvs(g, &candidate) {
            if candidate.is_empty() {
                return candidate;
            }
            best = Some(candidate);
        }
    }
    best.expect("the full interesting set is always a feedback set")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn empty_and_acyclic_graphs_need_no_cut() {
        let g = DiGraph::new(0);
        assert!(mfvs(&g, &MfvsConfig::default()).fvs.is_empty());
        let dag = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let r = mfvs(&dag, &MfvsConfig::default());
        assert!(r.fvs.is_empty());
        assert!(r.stats.sources_sinks > 0);
    }

    #[test]
    fn self_loop_forced_into_fvs() {
        let g = DiGraph::from_edges(3, [(0, 0), (1, 2)]);
        let r = mfvs(&g, &MfvsConfig::default());
        assert_eq!(r.fvs, vec![0]);
        assert_eq!(r.stats.self_loops, 1);
    }

    #[test]
    fn single_cycle_cut_once() {
        for n in [2, 3, 7] {
            let g = cycle(n);
            let r = mfvs(&g, &MfvsConfig::default());
            assert_eq!(r.fvs.len(), 1, "cycle of {n}");
            assert!(verify_fvs(&g, &r.fvs));
        }
    }

    #[test]
    fn two_disjoint_cycles_cut_twice() {
        let mut g = DiGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(u, v);
        }
        let r = mfvs(&g, &MfvsConfig::default());
        assert_eq!(r.fvs.len(), 2);
        assert!(verify_fvs(&g, &r.fvs));
    }

    /// The Figure 9 s-graph: A,B,E ↔ C,D complete bipartite-ish strongly
    /// connected graph. Symmetrization groups {A,B,E} (weight 3) and {C,D}
    /// (weight 2); descending-weight bypass leaves the *lighter* group in
    /// the cut: the optimal FVS is {C,D}, size 2.
    fn figure9() -> DiGraph {
        // vertices: A=0, B=1, C=2, D=3, E=4
        let mut g = DiGraph::new(5);
        for abe in [0, 1, 4] {
            for cd in [2, 3] {
                g.add_edge(abe, cd);
                g.add_edge(cd, abe);
            }
        }
        g
    }

    #[test]
    fn figure9_symmetry_transformation() {
        let g = figure9();
        // Without the symmetry rule the graph is irreducible (every vertex
        // has in/out degree ≥ 2, no self-loops): only greedy picks apply.
        let plain = mfvs(
            &g,
            &MfvsConfig {
                symmetry: false,
                descending_weight: true,
            },
        );
        assert_eq!(plain.stats.symmetry_merges, 0);
        assert!(plain.stats.greedy_picks > 0);
        assert!(verify_fvs(&g, &plain.fvs));

        // With it, the supervertices ABE (w=3) and CD (w=2) form, the
        // heavier is bypassed, the lighter self-loops into the cut.
        let enhanced = mfvs(&g, &MfvsConfig::default());
        assert_eq!(enhanced.stats.symmetry_merges, 3); // B,E into A; D into C
        assert_eq!(enhanced.fvs, vec![2, 3]); // C and D
        assert!(verify_fvs(&g, &enhanced.fvs));
        // Matches the exact optimum.
        assert_eq!(exact_mfvs(&g).len(), 2);
    }

    #[test]
    fn descending_weight_prefers_light_cut() {
        // Same shape as figure 9 but the heavier side is {C,D,…} — make a
        // 2 ↔ 4 bipartite SCC; optimal cut = the 2-side.
        let mut g = DiGraph::new(6);
        for a in [0, 1] {
            for b in [2, 3, 4, 5] {
                g.add_edge(a, b);
                g.add_edge(b, a);
            }
        }
        let r = mfvs(&g, &MfvsConfig::default());
        assert_eq!(r.fvs, vec![0, 1]);
    }

    #[test]
    fn bypass_reduces_chains() {
        // A long cycle is reducible by bypassing to a self-loop.
        let g = cycle(10);
        let r = mfvs(&g, &MfvsConfig::default());
        assert_eq!(r.fvs.len(), 1);
        assert!(r.stats.bypasses > 0);
        assert_eq!(r.stats.greedy_picks, 0);
    }

    #[test]
    fn exact_matches_heuristic_on_small_graphs() {
        // Deterministic pseudo-random graphs.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 6 + (trial % 4);
            let mut g = DiGraph::new(n);
            for _ in 0..(2 * n) {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                g.add_edge(u, v);
            }
            let exact = exact_mfvs(&g);
            let heur = mfvs(&g, &MfvsConfig::default());
            assert!(verify_fvs(&g, &heur.fvs), "trial {trial}");
            assert!(
                heur.fvs.len() <= exact.len() + 2,
                "trial {trial}: heuristic {} vs exact {}",
                heur.fvs.len(),
                exact.len()
            );
            assert!(heur.fvs.len() >= exact.len());
        }
    }

    #[test]
    fn symmetry_never_hurts() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 8;
            let mut g = DiGraph::new(n);
            for _ in 0..20 {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                if u != v {
                    g.add_edge(u, v);
                }
            }
            let with = mfvs(&g, &MfvsConfig::default());
            let without = mfvs(
                &g,
                &MfvsConfig {
                    symmetry: false,
                    descending_weight: true,
                },
            );
            assert!(verify_fvs(&g, &with.fvs));
            assert!(verify_fvs(&g, &without.fvs));
        }
    }

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(exact_mfvs(&cycle(5)).len(), 1);
        assert_eq!(exact_mfvs(&DiGraph::new(3)), Vec::<usize>::new());
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert_eq!(exact_mfvs(&g).len(), 2);
    }
}
