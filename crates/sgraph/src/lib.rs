//! s-graphs and enhanced minimum feedback vertex set (MFVS) partitioning for
//! sequential domino circuits (paper §4.2.1).
//!
//! Computing exact signal probabilities in a sequential circuit is
//! intractable (state explosion), so the paper cuts the circuit into
//! combinational blocks at a small set of flip-flops. The flip-flops whose
//! feedback is cut act as fresh primary inputs; the fewer the cuts, the
//! fewer pseudo-inputs and the cheaper the BDD computation.
//!
//! The cut set is a *feedback vertex set* of the **s-graph**: the directed
//! graph whose vertices are flip-flops and whose edges are combinational
//! structural dependencies between them (Chakradhar, Balakrishnan & Agrawal,
//! DAC '94). Finding a minimum FVS is NP-complete; this crate implements:
//!
//! * the three classical CBA graph reductions (self-loop, source/sink,
//!   unit-degree bypass) — Figure 8 of the paper;
//! * the paper's **new symmetry-based transformation**: vertices with
//!   identical fanins *and* identical fanouts are grouped into a weighted
//!   supervertex, and supervertices are processed in descending weight order
//!   — Figure 9 (phase-assignment duplication creates exactly this kind of
//!   symmetry in domino blocks);
//! * a greedy selection rule for irreducible remainders, and an exact
//!   branch-and-bound for small graphs (used to validate the heuristics);
//! * [`partition`]: applying the FVS to a [`Network`](domino_netlist::Network)
//!   to obtain an acyclic evaluation schedule for its latches.
//!
//! # Example
//!
//! ```
//! use domino_sgraph::{DiGraph, MfvsConfig, mfvs};
//!
//! // A 3-cycle: any single vertex is a minimum FVS.
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 0);
//! let result = mfvs(&g, &MfvsConfig::default());
//! assert_eq!(result.fvs.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod extract;
mod graph;
mod mfvs;
mod partition;

pub use extract::extract_sgraph;
pub use graph::DiGraph;
pub use mfvs::{exact_mfvs, mfvs, MfvsConfig, MfvsResult, ReductionStats};
pub use partition::{partition, Partition};
